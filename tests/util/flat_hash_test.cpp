#include "util/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vanet::util {
namespace {

TEST(FlatHashTest, FindOnEmptyMapReturnsNull) {
  FlatMap64<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_FALSE(map.erase(42));
}

TEST(FlatHashTest, InsertFindAndValueIdentity) {
  FlatMap64<std::string> map;
  map.findOrEmplace(1, "one");
  map.findOrEmplace(2, "two");
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(1), nullptr);
  EXPECT_EQ(*map.find(1), "one");
  // findOrEmplace on a present key returns the existing value untouched.
  EXPECT_EQ(map.findOrEmplace(1, "ignored"), "one");
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.find(3), nullptr);
}

TEST(FlatHashTest, SurvivesRehashGrowth) {
  FlatMap64<std::uint64_t> map;
  // Far past the initial 16-cell table and several doublings.
  for (std::uint64_t key = 0; key < 5000; ++key) {
    map.findOrEmplace(key * 1315423911ull, key);
  }
  EXPECT_EQ(map.size(), 5000u);
  for (std::uint64_t key = 0; key < 5000; ++key) {
    auto* value = map.find(key * 1315423911ull);
    ASSERT_NE(value, nullptr) << key;
    EXPECT_EQ(*value, key);
  }
}

TEST(FlatHashTest, EraseRemovesOnlyTheTarget) {
  FlatMap64<int> map;
  for (std::uint64_t key = 0; key < 100; ++key) {
    map.findOrEmplace(key, static_cast<int>(key) * 3);
  }
  EXPECT_TRUE(map.erase(37));
  EXPECT_FALSE(map.erase(37));  // already gone
  EXPECT_EQ(map.size(), 99u);
  EXPECT_EQ(map.find(37), nullptr);
  for (std::uint64_t key = 0; key < 100; ++key) {
    if (key == 37) continue;
    ASSERT_NE(map.find(key), nullptr) << key;
    EXPECT_EQ(*map.find(key), static_cast<int>(key) * 3);
  }
}

TEST(FlatHashTest, EraseKeepsCollisionChainsIntact) {
  // Sequential keys hash through splitmix64, so force long probe chains
  // the honest way: load many keys into a small logical neighbourhood and
  // delete from the middle of the insertion order. Every surviving key
  // must stay reachable even when its probe chain crossed a tombstone.
  FlatMap64<std::uint64_t> map;
  constexpr std::uint64_t kCount = 512;
  for (std::uint64_t key = 0; key < kCount; ++key) {
    map.findOrEmplace(key, key + 1000);
  }
  for (std::uint64_t key = 0; key < kCount; key += 3) {
    EXPECT_TRUE(map.erase(key));
  }
  for (std::uint64_t key = 0; key < kCount; ++key) {
    if (key % 3 == 0) {
      EXPECT_EQ(map.find(key), nullptr) << key;
    } else {
      ASSERT_NE(map.find(key), nullptr) << key;
      EXPECT_EQ(*map.find(key), key + 1000);
    }
  }
}

TEST(FlatHashTest, TombstonesAreRecycledByInserts) {
  FlatMap64<int> map;
  for (std::uint64_t key = 0; key < 64; ++key) map.findOrEmplace(key, 1);
  // Churn the same keyspace: every erase leaves a tombstone, every
  // re-insert must be able to reuse one instead of growing the chain.
  for (int round = 0; round < 1000; ++round) {
    const std::uint64_t key = static_cast<std::uint64_t>(round % 64);
    EXPECT_TRUE(map.erase(key));
    map.findOrEmplace(key, round);
  }
  EXPECT_EQ(map.size(), 64u);
  for (std::uint64_t key = 0; key < 64; ++key) {
    ASSERT_NE(map.find(key), nullptr) << key;
  }
}

TEST(FlatHashTest, EraseEverythingThenReuse) {
  FlatMap64<int> map;
  for (std::uint64_t key = 0; key < 200; ++key) map.findOrEmplace(key, 7);
  for (std::uint64_t key = 0; key < 200; ++key) EXPECT_TRUE(map.erase(key));
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(5), nullptr);
  // The emptied map accepts fresh keys (rehash drops the tombstones).
  for (std::uint64_t key = 1000; key < 1200; ++key) {
    map.findOrEmplace(key, 9);
  }
  EXPECT_EQ(map.size(), 200u);
  EXPECT_EQ(*map.find(1100), 9);
}

TEST(FlatHashTest, LookupResultsIndependentOfOperationOrder) {
  // Two maps built through different insert/erase interleavings must
  // agree on every lookup: contents, not history, define the map.
  FlatMap64<int> forward;
  for (std::uint64_t key = 0; key < 300; ++key) {
    forward.findOrEmplace(key, static_cast<int>(key));
  }
  for (std::uint64_t key = 0; key < 300; key += 2) forward.erase(key);

  FlatMap64<int> shuffled;
  for (std::uint64_t key = 300; key-- > 0;) {
    shuffled.findOrEmplace(key, static_cast<int>(key));
    if (key % 5 == 0 && key + 2 < 300) shuffled.erase(key + 2);
  }
  for (std::uint64_t key = 0; key < 300; key += 2) shuffled.erase(key);
  for (std::uint64_t key = 1; key < 300; key += 2) {
    shuffled.findOrEmplace(key, static_cast<int>(key));
  }

  EXPECT_EQ(forward.size(), shuffled.size());
  for (std::uint64_t key = 0; key < 300; ++key) {
    const int* a = forward.find(key);
    const int* b = shuffled.find(key);
    EXPECT_EQ(a == nullptr, b == nullptr) << key;
    if (a != nullptr && b != nullptr) {
      EXPECT_EQ(*a, *b) << key;
    }
  }
}

TEST(FlatHashTest, IterationCoversExactlyTheLiveEntries) {
  FlatMap64<int> map;
  for (std::uint64_t key = 0; key < 50; ++key) {
    map.findOrEmplace(key, static_cast<int>(key) + 5);
  }
  for (std::uint64_t key = 10; key < 20; ++key) map.erase(key);

  std::map<std::uint64_t, int> seen;
  for (const auto& [key, value] : map) {
    EXPECT_TRUE(seen.emplace(key, value).second) << "duplicate " << key;
  }
  EXPECT_EQ(seen.size(), 40u);
  for (std::uint64_t key = 0; key < 50; ++key) {
    if (key >= 10 && key < 20) {
      EXPECT_EQ(seen.count(key), 0u) << key;
    } else {
      ASSERT_EQ(seen.count(key), 1u) << key;
      EXPECT_EQ(seen[key], static_cast<int>(key) + 5);
    }
  }
}

TEST(FlatHashTest, ClearResetsForReuse) {
  FlatMap64<int> map;
  for (std::uint64_t key = 0; key < 40; ++key) map.findOrEmplace(key, 1);
  map.erase(3);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(1), nullptr);
  map.findOrEmplace(99, 42);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(99), 42);
}

}  // namespace
}  // namespace vanet::util
