#include "util/flags.h"

#include <gtest/gtest.h>

namespace vanet {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags{static_cast<int>(argv.size()), argv.data()};
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags f = parse({"--rounds=30", "--speed=5.5", "--name=urban"});
  EXPECT_EQ(f.getInt("rounds", 0), 30);
  EXPECT_DOUBLE_EQ(f.getDouble("speed", 0.0), 5.5);
  EXPECT_EQ(f.getString("name", ""), "urban");
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags f = parse({"--rounds", "12", "--name", "x"});
  EXPECT_EQ(f.getInt("rounds", 0), 12);
  EXPECT_EQ(f.getString("name", ""), "x");
}

TEST(FlagsTest, BareBooleanFlag) {
  const Flags f = parse({"--coop", "--rounds=5"});
  EXPECT_TRUE(f.getBool("coop", false));
  EXPECT_EQ(f.getInt("rounds", 0), 5);
}

TEST(FlagsTest, BooleanValues) {
  const Flags f = parse({"--a=true", "--b=false", "--c=1", "--d=0",
                         "--e=yes", "--f=no"});
  EXPECT_TRUE(f.getBool("a", false));
  EXPECT_FALSE(f.getBool("b", true));
  EXPECT_TRUE(f.getBool("c", false));
  EXPECT_FALSE(f.getBool("d", true));
  EXPECT_TRUE(f.getBool("e", false));
  EXPECT_FALSE(f.getBool("f", true));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const Flags f = parse({});
  EXPECT_EQ(f.getInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.getDouble("missing", 1.5), 1.5);
  EXPECT_EQ(f.getString("missing", "dflt"), "dflt");
  EXPECT_TRUE(f.getBool("missing", true));
  EXPECT_FALSE(f.has("missing"));
}

TEST(FlagsTest, LaterOccurrenceWins) {
  const Flags f = parse({"--x=1", "--x=2"});
  EXPECT_EQ(f.getInt("x", 0), 2);
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = parse({"input.txt", "--x=1", "other"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "other");
}

TEST(FlagsTest, BareFlagBeforeAnotherFlag) {
  const Flags f = parse({"--verbose", "--rounds=3"});
  EXPECT_TRUE(f.getBool("verbose", false));
  EXPECT_EQ(f.getInt("rounds", 0), 3);
}

TEST(FlagsTest, NegativeNumbers) {
  const Flags f = parse({"--power=-12.5", "--offset=-3"});
  EXPECT_DOUBLE_EQ(f.getDouble("power", 0.0), -12.5);
  EXPECT_EQ(f.getInt("offset", 0), -3);
}

}  // namespace
}  // namespace vanet
