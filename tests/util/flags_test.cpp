#include "util/flags.h"

#include <gtest/gtest.h>

namespace vanet {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags{static_cast<int>(argv.size()), argv.data()};
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags f = parse({"--rounds=30", "--speed=5.5", "--name=urban"});
  EXPECT_EQ(f.getInt("rounds", 0), 30);
  EXPECT_DOUBLE_EQ(f.getDouble("speed", 0.0), 5.5);
  EXPECT_EQ(f.getString("name", ""), "urban");
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags f = parse({"--rounds", "12", "--name", "x"});
  EXPECT_EQ(f.getInt("rounds", 0), 12);
  EXPECT_EQ(f.getString("name", ""), "x");
}

TEST(FlagsTest, BareBooleanFlag) {
  const Flags f = parse({"--coop", "--rounds=5"});
  EXPECT_TRUE(f.getBool("coop", false));
  EXPECT_EQ(f.getInt("rounds", 0), 5);
}

TEST(FlagsTest, BooleanValues) {
  const Flags f = parse({"--a=true", "--b=false", "--c=1", "--d=0",
                         "--e=yes", "--f=no"});
  EXPECT_TRUE(f.getBool("a", false));
  EXPECT_FALSE(f.getBool("b", true));
  EXPECT_TRUE(f.getBool("c", false));
  EXPECT_FALSE(f.getBool("d", true));
  EXPECT_TRUE(f.getBool("e", false));
  EXPECT_FALSE(f.getBool("f", true));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const Flags f = parse({});
  EXPECT_EQ(f.getInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.getDouble("missing", 1.5), 1.5);
  EXPECT_EQ(f.getString("missing", "dflt"), "dflt");
  EXPECT_TRUE(f.getBool("missing", true));
  EXPECT_FALSE(f.has("missing"));
}

TEST(FlagsTest, LaterOccurrenceWins) {
  const Flags f = parse({"--x=1", "--x=2"});
  EXPECT_EQ(f.getInt("x", 0), 2);
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = parse({"input.txt", "--x=1", "other"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "other");
}

TEST(FlagsTest, BareFlagBeforeAnotherFlag) {
  const Flags f = parse({"--verbose", "--rounds=3"});
  EXPECT_TRUE(f.getBool("verbose", false));
  EXPECT_EQ(f.getInt("rounds", 0), 3);
}

TEST(FlagsTest, NegativeNumbers) {
  const Flags f = parse({"--power=-12.5", "--offset=-3"});
  EXPECT_DOUBLE_EQ(f.getDouble("power", 0.0), -12.5);
  EXPECT_EQ(f.getInt("offset", 0), -3);
}

TEST(FlagsTest, UInt64HoldsFullSeedRange) {
  // Master seeds are 64-bit; getInt would truncate them.
  const Flags f = parse({"--seed=18446744073709551615"});
  EXPECT_EQ(f.getUInt64("seed", 0), 18446744073709551615ull);
  EXPECT_EQ(f.getUInt64("missing", 2008), 2008u);
}

TEST(FlagsTest, ShardSpecParses) {
  const Flags f = parse({"--shard=1/4"});
  const ShardSpec shard = f.getShard("shard");
  EXPECT_EQ(shard.index, 1);
  EXPECT_EQ(shard.count, 4);
}

TEST(FlagsTest, ShardSpecDefaultsWhenAbsentOrBare) {
  const ShardSpec absent = parse({}).getShard("shard");
  EXPECT_EQ(absent.index, 0);
  EXPECT_EQ(absent.count, 1);
  // A bare `--shard` is left for getBool-style mode switches.
  const ShardSpec bare = parse({"--shard"}).getShard("shard");
  EXPECT_EQ(bare.index, 0);
  EXPECT_EQ(bare.count, 1);
}

TEST(FlagsTest, CampaignRunFlagsReadSharedVocabulary) {
  const Flags f = parse({"--seed=99", "--threads=3", "--shard=1/2",
                         "--partial-out=/tmp/p.json", "--streaming"});
  const CampaignRunFlags run = campaignRunFlags(f);
  EXPECT_EQ(run.seed, 99u);
  EXPECT_EQ(run.threads, 3);
  EXPECT_EQ(run.shard.index, 1);
  EXPECT_EQ(run.shard.count, 2);
  EXPECT_EQ(run.partialOut, "/tmp/p.json");
  EXPECT_TRUE(run.streaming);
}

TEST(FlagsTest, CampaignRunFlagsDefaults) {
  const CampaignRunFlags run = campaignRunFlags(parse({}));
  EXPECT_EQ(run.seed, 2008u);
  EXPECT_EQ(run.threads, 0);
  EXPECT_EQ(run.shard.count, 1);
  EXPECT_TRUE(run.partialOut.empty());
  EXPECT_FALSE(run.streaming);
}

}  // namespace
}  // namespace vanet
