#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "util/rng.h"

namespace vanet {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng{5};
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// State captures every internal field, so bit-equality of two
// accumulators is state equality.
bool bitIdentical(const RunningStats& a, const RunningStats& b) {
  const RunningStats::State sa = a.state();
  const RunningStats::State sb = b.state();
  const auto bits = [](double x) {
    std::uint64_t u = 0;
    std::memcpy(&u, &x, sizeof u);
    return u;
  };
  return sa.count == sb.count && bits(sa.mean) == bits(sb.mean) &&
         bits(sa.m2) == bits(sb.m2) && bits(sa.sum) == bits(sb.sum) &&
         bits(sa.min) == bits(sb.min) && bits(sa.max) == bits(sb.max);
}

RunningStats sampled(std::uint64_t seed, int n, double mean, double sd) {
  Rng rng{seed};
  RunningStats s;
  for (int i = 0; i < n; ++i) s.add(rng.normal(mean, sd));
  return s;
}

TEST(RunningStatsTest, MergeIdentityIsExact) {
  // Merging an empty accumulator, from either side, is bit-exact: the
  // shard pipeline relies on empty partial summaries being no-ops.
  const RunningStats a = sampled(7, 257, 1.5, 0.3);
  RunningStats left = a;
  left.merge(RunningStats());
  EXPECT_TRUE(bitIdentical(left, a));
  RunningStats right;
  right.merge(a);
  EXPECT_TRUE(bitIdentical(right, a));
}

TEST(RunningStatsTest, MergeIsAssociativeWithinTolerance) {
  const RunningStats a = sampled(11, 100, -2.0, 1.0);
  const RunningStats b = sampled(12, 300, 5.0, 0.5);
  const RunningStats c = sampled(13, 50, 0.0, 3.0);
  RunningStats ab = a;
  ab.merge(b);
  ab.merge(c);  // (a + b) + c
  RunningStats bc = b;
  bc.merge(c);
  RunningStats abc = a;
  abc.merge(bc);  // a + (b + c)
  EXPECT_EQ(ab.count(), abc.count());
  EXPECT_NEAR(ab.mean(), abc.mean(), 1e-13 * std::abs(ab.mean()) + 1e-15);
  EXPECT_NEAR(ab.variance(), abc.variance(),
              1e-12 * ab.variance() + 1e-15);
  EXPECT_DOUBLE_EQ(ab.min(), abc.min());
  EXPECT_DOUBLE_EQ(ab.max(), abc.max());
  EXPECT_DOUBLE_EQ(ab.sum(), abc.sum());
}

TEST(RunningStatsTest, MergeEquivalentToPooledAdd) {
  // The parallel-variance formula must agree with one accumulator that
  // saw every sample, up to rounding of the same scale as the values.
  Rng rng{17};
  RunningStats pooled;
  RunningStats parts[4];
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.normal(10.0, 4.0);
    pooled.add(x);
    parts[i % 4].add(x);
  }
  RunningStats merged = parts[0];
  for (int p = 1; p < 4; ++p) merged.merge(parts[p]);
  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_NEAR(merged.mean(), pooled.mean(), 1e-12 * std::abs(pooled.mean()));
  EXPECT_NEAR(merged.variance(), pooled.variance(),
              1e-10 * pooled.variance());
  EXPECT_NEAR(merged.sum(), pooled.sum(), 1e-12 * std::abs(pooled.sum()));
  EXPECT_DOUBLE_EQ(merged.min(), pooled.min());
  EXPECT_DOUBLE_EQ(merged.max(), pooled.max());
}

TEST(RunningStatsTest, StateRoundTripIsBitExact) {
  const RunningStats a = sampled(23, 999, 0.25, 7.0);
  EXPECT_TRUE(bitIdentical(RunningStats::fromState(a.state()), a));
  // Empty accumulators round-trip to empty (min/max sentinels restored).
  const RunningStats empty;
  const RunningStats back = RunningStats::fromState(empty.state());
  EXPECT_EQ(back.count(), 0u);
  RunningStats merged = back;
  merged.merge(a);
  EXPECT_TRUE(bitIdentical(merged, a));
}

TEST(RunningStatsTest, ConfidenceIntervalBasics) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.confidence95(), 0.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.confidence95(), 0.0);  // n < 2
  s.add(3.0);
  // n=2: t(1)=12.706, sd=sqrt(2), se=1 -> CI = 12.706.
  EXPECT_NEAR(s.confidence95(), 12.706, 1e-9);
  EXPECT_NEAR(s.stderrOfMean(), 1.0, 1e-12);
}

TEST(RunningStatsTest, ConfidenceShrinksWithSamples) {
  Rng rng{21};
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) large.add(rng.normal(0.0, 1.0));
  EXPECT_GT(small.confidence95(), large.confidence95());
  // Large n: CI ~ 1.96 / sqrt(n).
  EXPECT_NEAR(large.confidence95(), 1.96 * large.stddev() / std::sqrt(1000.0),
              1e-9);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(50.0);  // clamps to bin 9
  EXPECT_EQ(h.binCount(0), 2u);
  EXPECT_EQ(h.binCount(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.binHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.binLow(4), 8.0);
  EXPECT_DOUBLE_EQ(h.binHigh(4), 10.0);
}

TEST(HistogramTest, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng{3};
  for (int i = 0; i < 100000; ++i) {
    h.add(rng.uniform());
  }
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(HistogramTest, FarOutOfRangeValuesClampWithoutOverflow) {
  // The bin index is clamped in the double domain *before* the integer
  // cast: values whose scaled position exceeds any integer type (and
  // +-infinity) must land in the edge bins, not invoke UB.
  Histogram h(0.0, 1.0, 4);
  h.add(1e300);
  h.add(-1e300);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.binCount(0), 2u);
  EXPECT_EQ(h.binCount(3), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, NanSamplesAreDroppedNotCounted) {
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 0u);
  for (std::size_t bin = 0; bin < h.bins(); ++bin) {
    EXPECT_EQ(h.binCount(bin), 0u);
  }
  // Real samples around a dropped NaN keep their quantiles: total_ and
  // the bin mass must stay consistent.
  h.add(0.3);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(0.3);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_NEAR(h.quantile(1.0), 0.5, 1e-12);  // high edge of bin [0.25,0.5)
}

TEST(HistogramTest, QuantileSkipsEmptyBins) {
  // Mass only in bins 0 and 5 of [0,10): the boundary between the two
  // halves of the data falls where bins 1..4 are empty. The quantile
  // must never report the low edge of an empty bin.
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.5);
  h.add(5.5);
  h.add(5.5);
  // q=0.5 -> target 2 = all of bin 0: the high edge of bin 0.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  // q=0.75 -> halfway into bin 5, not somewhere in the empty gap.
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 5.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);
}

TEST(HistogramTest, QuantileZeroStartsAtFirstNonEmptyBin) {
  // Regression: q=0 has target 0, which every prefix (including the
  // empty one) satisfies -- the old walk returned lo_ even when bin 0
  // held nothing. It must report where the data starts.
  Histogram h(0.0, 10.0, 10);
  h.add(5.5);
  h.add(6.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  // And an entirely empty histogram still reports the range's low edge.
  const Histogram empty(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 2.0);
}

TEST(HistogramTest, SparseQuantilesPinned) {
  // A single-sample histogram: every quantile lives inside the one
  // occupied bin.
  Histogram h(0.0, 8.0, 8);
  h.add(3.2);  // bin 3 = [3,4)
  for (const double q : {0.0, 0.25, 0.5, 0.99}) {
    EXPECT_GE(h.quantile(q), 3.0) << "q=" << q;
    EXPECT_LE(h.quantile(q), 4.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(HistogramTest, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string text = h.render();
  EXPECT_NE(text.find("1"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(SeriesAccumulatorTest, GrowsOnDemand) {
  SeriesAccumulator acc;
  acc.add(5, 1.0);
  EXPECT_EQ(acc.size(), 6u);
  EXPECT_EQ(acc.at(5).count(), 1u);
  EXPECT_EQ(acc.at(0).count(), 0u);
}

TEST(SeriesAccumulatorTest, MeansPerIndex) {
  SeriesAccumulator acc;
  acc.add(0, 1.0);
  acc.add(0, 0.0);
  acc.add(1, 1.0);
  const auto means = acc.means();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 0.5);
  EXPECT_DOUBLE_EQ(means[1], 1.0);
}

TEST(SeriesAccumulatorTest, SmoothingAveragesNeighbours) {
  SeriesAccumulator acc;
  for (std::size_t i = 0; i < 5; ++i) {
    acc.add(i, i == 2 ? 1.0 : 0.0);  // impulse at index 2
  }
  const auto smooth = acc.smoothedMeans(1);
  ASSERT_EQ(smooth.size(), 5u);
  EXPECT_DOUBLE_EQ(smooth[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(smooth[2], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(smooth[3], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(smooth[0], 0.0);
}

TEST(SeriesAccumulatorTest, CellsRoundTripPreservesMergeBehaviour) {
  SeriesAccumulator acc;
  acc.add(0, 1.0);
  acc.add(0, 0.0);
  acc.add(3, 0.5);
  const SeriesAccumulator back = SeriesAccumulator::fromCells(acc.cells());
  ASSERT_EQ(back.size(), acc.size());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    EXPECT_EQ(back.at(i).count(), acc.at(i).count());
    EXPECT_DOUBLE_EQ(back.at(i).mean(), acc.at(i).mean());
  }
}

TEST(SeriesAccumulatorTest, ZeroSmoothingIsIdentity) {
  SeriesAccumulator acc;
  acc.add(0, 0.25);
  acc.add(1, 0.75);
  EXPECT_EQ(acc.smoothedMeans(0), acc.means());
}

}  // namespace
}  // namespace vanet
