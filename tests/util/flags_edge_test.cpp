/// \file flags_edge_test.cpp
/// Edge cases of the flag parser that the happy-path suite in
/// flags_test.cpp does not cover: explicitly empty values (`--seed=`),
/// flags whose space-syntax value is a negative number, and malformed
/// `--shard` specs. Every typed parser rejects a bad value by printing a
/// diagnostic and exiting with status 2 (badValue), which death tests
/// observe from the parent process.

#include "util/flags.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

namespace vanet {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags{static_cast<int>(argv.size()), argv.data()};
}

using FlagsEdgeDeathTest = ::testing::Test;

TEST(FlagsEdgeDeathTest, EmptyValuesAreRejectedByEveryTypedParser) {
  // `--flag=` stores an empty string; each typed getter must take the
  // badValue exit path instead of reading value.front() (previously
  // undefined behaviour in getUInt64) or silently falling back.
  EXPECT_EXIT(parse({"--seed="}).getUInt64("seed", 1),
              ::testing::ExitedWithCode(2), "cannot parse '' as unsigned");
  EXPECT_EXIT(parse({"--rounds="}).getInt("rounds", 1),
              ::testing::ExitedWithCode(2), "cannot parse '' as int");
  EXPECT_EXIT(parse({"--speed="}).getDouble("speed", 1.0),
              ::testing::ExitedWithCode(2), "cannot parse '' as double");
  EXPECT_EXIT(parse({"--coop="}).getBool("coop", true),
              ::testing::ExitedWithCode(2), "cannot parse '' as bool");
  EXPECT_EXIT(parse({"--shard="}).getShard("shard"),
              ::testing::ExitedWithCode(2), "cannot parse '' as shard");
}

TEST(FlagsTest, EmptyValueStaysDistinctFromAbsentFlag) {
  // The empty value is rejected loudly -- it must NOT read as "flag
  // absent, use the fallback". Only strings may legitimately be empty.
  const Flags f = parse({"--partial-out="});
  EXPECT_TRUE(f.has("partial-out"));
  EXPECT_EQ(f.getString("partial-out", "dflt"), "");
  EXPECT_FALSE(f.has("missing"));
  EXPECT_EQ(f.getString("missing", "dflt"), "dflt");
}

TEST(FlagsTest, SpaceSyntaxConsumesNegativeNumbers) {
  // `--offset -3`: the next token starts with '-' but not "--", so it is
  // a value, not a flag.
  const Flags f = parse({"--offset", "-3", "--power", "-12.5"});
  EXPECT_EQ(f.getInt("offset", 0), -3);
  EXPECT_DOUBLE_EQ(f.getDouble("power", 0.0), -12.5);
}

TEST(FlagsEdgeDeathTest, NegativeValuesRejectedWhereUnsigned) {
  EXPECT_EXIT(parse({"--seed", "-5"}).getUInt64("seed", 1),
              ::testing::ExitedWithCode(2), "cannot parse '-5' as unsigned");
  EXPECT_EXIT(parse({"--seed=-1"}).getUInt64("seed", 1),
              ::testing::ExitedWithCode(2), "cannot parse '-1' as unsigned");
}

TEST(FlagsEdgeDeathTest, MalformedShardSpecsAreRejected) {
  for (const char* spec :
       {"--shard=1", "--shard=1/", "--shard=/2", "--shard=a/2",
        "--shard=1/b", "--shard=1/2x", "--shard=2/2", "--shard=-1/3",
        "--shard=0/0", "--shard=1 / 2"}) {
    EXPECT_EXIT(parse({spec}).getShard("shard"),
                ::testing::ExitedWithCode(2), "shard spec")
        << "spec not rejected: " << spec;
  }
}

TEST(FlagsEdgeDeathTest, TrailingGarbageRejectedByNumericParsers) {
  EXPECT_EXIT(parse({"--rounds=3x"}).getInt("rounds", 0),
              ::testing::ExitedWithCode(2), "cannot parse '3x' as int");
  EXPECT_EXIT(parse({"--speed=1.5mps"}).getDouble("speed", 0.0),
              ::testing::ExitedWithCode(2), "as double");
  EXPECT_EXIT(parse({"--seed=12 34"}).getUInt64("seed", 0),
              ::testing::ExitedWithCode(2), "as unsigned");
}

TEST(FlagsTest, CampaignRunFlagsReadAdaptiveVocabulary) {
  const Flags f = parse({"--target-ci=0.05", "--min-reps=4", "--max-reps=64",
                         "--target-metric=pdr"});
  const CampaignRunFlags run = campaignRunFlags(f);
  EXPECT_DOUBLE_EQ(run.targetCi, 0.05);
  EXPECT_EQ(run.minReps, 4);
  EXPECT_EQ(run.maxReps, 64);
  EXPECT_EQ(run.targetMetric, "pdr");
  // Absent adaptive flags keep the fixed-count defaults.
  const CampaignRunFlags fixed = campaignRunFlags(parse({}));
  EXPECT_DOUBLE_EQ(fixed.targetCi, 0.0);
  EXPECT_EQ(fixed.minReps, 0);
  EXPECT_EQ(fixed.maxReps, 0);
  EXPECT_TRUE(fixed.targetMetric.empty());
}

TEST(FlagsEdgeDeathTest, AllowOnlyRejectsUnknownFlagsWithDidYouMean) {
  // A typo within editing distance of a legal flag names it in the hint.
  EXPECT_EXIT(parse({"--thread=4"}).allowOnly({"threads", "seed"}),
              ::testing::ExitedWithCode(2),
              "unknown flag --thread \\(did you mean --threads\\?\\)");
  // Nothing close: the bare rejection, no misleading hint.
  EXPECT_EXIT(parse({"--zzzzzzzz=1"}).allowOnly({"threads", "seed"}),
              ::testing::ExitedWithCode(2), "unknown flag --zzzzzzzz");
}

TEST(FlagsTest, AllowOnlyAcceptsTheFullVocabulary) {
  // Every name in the shared campaign vocabulary passes its own check,
  // and positional arguments are never flagged.
  const Flags flags = parse({"--seed=1", "--threads=2", "--streaming",
                             "--target-ci=0.1", "pos0", "pos1"});
  flags.allowOnly(campaignFlagNames());
  EXPECT_EQ(flags.positional().size(), 2u);
}

}  // namespace
}  // namespace vanet
