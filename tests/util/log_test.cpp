#include "util/log.h"

#include <gtest/gtest.h>

namespace vanet {
namespace {

/// Restores the process-wide level after each test: the logger is global
/// state other suites in this binary read.
class LogLevelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = Log::level(); }
  void TearDown() override { Log::setLevel(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LogLevelTest, EnabledFollowsTheSeverityOrder) {
  Log::setLevel(LogLevel::kWarn);
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  EXPECT_TRUE(Log::enabled(LogLevel::kWarn));
  EXPECT_FALSE(Log::enabled(LogLevel::kInfo));
  EXPECT_FALSE(Log::enabled(LogLevel::kTrace));

  Log::setLevel(LogLevel::kTrace);
  EXPECT_TRUE(Log::enabled(LogLevel::kTrace));

  Log::setLevel(LogLevel::kError);
  EXPECT_FALSE(Log::enabled(LogLevel::kWarn));
}

TEST_F(LogLevelTest, SetLevelFromNameParsesEveryLevel) {
  EXPECT_TRUE(Log::setLevelFromName("error"));
  EXPECT_EQ(Log::level(), LogLevel::kError);
  EXPECT_TRUE(Log::setLevelFromName("warn"));
  EXPECT_EQ(Log::level(), LogLevel::kWarn);
  EXPECT_TRUE(Log::setLevelFromName("info"));
  EXPECT_EQ(Log::level(), LogLevel::kInfo);
  EXPECT_TRUE(Log::setLevelFromName("debug"));
  EXPECT_EQ(Log::level(), LogLevel::kDebug);
  EXPECT_TRUE(Log::setLevelFromName("trace"));
  EXPECT_EQ(Log::level(), LogLevel::kTrace);
}

TEST_F(LogLevelTest, UnknownNameIsRejectedAndLeavesLevelUntouched) {
  Log::setLevel(LogLevel::kInfo);
  EXPECT_FALSE(Log::setLevelFromName("verbose"));
  EXPECT_FALSE(Log::setLevelFromName("WARN"));  // case-sensitive
  EXPECT_FALSE(Log::setLevelFromName(""));
  EXPECT_EQ(Log::level(), LogLevel::kInfo);
}

TEST_F(LogLevelTest, DisabledMacroNeverFormats) {
  Log::setLevel(LogLevel::kError);
  int evaluations = 0;
  const auto touch = [&evaluations] {
    ++evaluations;
    return "x";
  };
  LOG_DEBUG("never " << touch());
  EXPECT_EQ(evaluations, 0);
  LOG_ERROR("once " << touch());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogLevelTest, TagsAreStable) {
  EXPECT_STREQ(Log::tag(LogLevel::kError), "E");
  EXPECT_STREQ(Log::tag(LogLevel::kWarn), "W");
  EXPECT_STREQ(Log::tag(LogLevel::kInfo), "I");
  EXPECT_STREQ(Log::tag(LogLevel::kDebug), "D");
  EXPECT_STREQ(Log::tag(LogLevel::kTrace), "T");
}

}  // namespace
}  // namespace vanet
