#include "util/binio.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace vanet::util {
namespace {

TEST(BinIoTest, IntegersAreLittleEndianOnTheWire) {
  BinWriter writer;
  writer.u8(0xab);
  writer.u32(0x01020304u);
  writer.u64(0x1122334455667788ull);
  const std::string& bytes = writer.buffer();
  ASSERT_EQ(bytes.size(), 13u);
  const auto byteAt = [&](std::size_t i) {
    return static_cast<unsigned char>(bytes[i]);
  };
  EXPECT_EQ(byteAt(0), 0xab);
  // u32: least-significant byte first.
  EXPECT_EQ(byteAt(1), 0x04);
  EXPECT_EQ(byteAt(2), 0x03);
  EXPECT_EQ(byteAt(3), 0x02);
  EXPECT_EQ(byteAt(4), 0x01);
  // u64 likewise.
  EXPECT_EQ(byteAt(5), 0x88);
  EXPECT_EQ(byteAt(12), 0x11);
}

TEST(BinIoTest, RoundTripAllScalarTypes) {
  BinWriter writer;
  writer.u8(200);
  writer.u32(0xdeadbeefu);
  writer.u64(0xfeedfacecafebeefull);
  writer.i32(-12345);
  writer.i64(-3000000000LL);
  writer.f64(3.141592653589793);
  writer.str("hello\0world");  // string_view stops at the NUL here
  writer.str("");
  const std::string bytes = writer.take();

  BinReader reader(bytes);
  EXPECT_EQ(reader.u8("a"), 200);
  EXPECT_EQ(reader.u32("b"), 0xdeadbeefu);
  EXPECT_EQ(reader.u64("c"), 0xfeedfacecafebeefull);
  EXPECT_EQ(reader.i32("d"), -12345);
  EXPECT_EQ(reader.i64("e"), -3000000000LL);
  EXPECT_EQ(reader.f64("f"), 3.141592653589793);
  EXPECT_EQ(reader.str("g"), "hello");
  EXPECT_EQ(reader.str("h"), "");
  EXPECT_TRUE(reader.atEnd());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(BinIoTest, DoublesRoundTripBitExact) {
  // The raw-payload encoding must preserve every IEEE-754 special value,
  // including NaN payloads and the sign of zero, bit for bit.
  const double values[] = {0.0,
                           -0.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -1.0 / 3.0};
  BinWriter writer;
  for (double value : values) writer.f64(value);
  BinReader reader(writer.buffer());
  for (double value : values) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(reader.f64("value")),
              std::bit_cast<std::uint64_t>(value));
  }
}

TEST(BinIoTest, TruncationNamesOffsetFieldAndCounts) {
  BinWriter writer;
  writer.u32(7);
  BinReader reader(writer.buffer());
  EXPECT_EQ(reader.u32("first"), 7u);
  try {
    reader.u64("grid index");
    FAIL() << "read past the end must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(),
                 "truncated at byte offset 4 while reading grid index "
                 "(need 8 bytes, have 0)");
  }
}

TEST(BinIoTest, BaseOffsetShiftsReportedOffsets) {
  // A reader over one section of a larger file reports absolute file
  // offsets, not section-local ones.
  BinReader reader("abc", /*baseOffset=*/100);
  EXPECT_EQ(reader.offset(), 100u);
  reader.u8("x");
  EXPECT_EQ(reader.offset(), 101u);
  try {
    reader.u32("y");
    FAIL() << "must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("byte offset 101"),
              std::string::npos)
        << error.what();
  }
}

TEST(BinIoTest, StringWithBadLengthPrefixThrows) {
  BinWriter writer;
  writer.u32(1000);  // claims 1000 bytes follow
  writer.raw("xy", 2);
  BinReader reader(writer.buffer());
  EXPECT_THROW(reader.str("name"), std::runtime_error);
}

TEST(BinIoTest, ViewConsumesAndDelegates) {
  BinWriter inner;
  inner.u64(42);
  BinWriter outer;
  outer.u64(inner.size());
  outer.raw(inner.buffer().data(), inner.size());
  outer.u8(9);

  BinReader reader(outer.buffer());
  const std::uint64_t length = reader.u64("record length");
  BinReader record(reader.view(length, "record"), reader.offset() - length);
  EXPECT_EQ(record.u64("payload"), 42u);
  EXPECT_TRUE(record.atEnd());
  EXPECT_EQ(reader.u8("tail"), 9);
  EXPECT_THROW(reader.view(1, "past end"), std::runtime_error);
}

TEST(BinIoTest, PatchU64FillsReservedFraming) {
  BinWriter writer;
  const std::size_t at = writer.size();
  writer.u64(0);  // reserve
  writer.str("payload");
  writer.patchU64(at, 0xa1b2c3d4e5f60718ull);
  BinReader reader(writer.buffer());
  EXPECT_EQ(reader.u64("patched"), 0xa1b2c3d4e5f60718ull);
  EXPECT_EQ(reader.str("payload"), "payload");
  EXPECT_THROW(writer.patchU64(writer.size() - 4, 1), std::logic_error);
}

TEST(BinIoTest, Fnv1a64MatchesReferenceVectorsAndChunks) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ull);
  // Incremental hashing over chunks equals one pass over the whole.
  const std::string data = "the incremental form must agree";
  const std::uint64_t whole = fnv1a64(data.data(), data.size());
  std::uint64_t chunked = fnv1a64(data.data(), 7);
  chunked = fnv1a64(data.data() + 7, data.size() - 7, chunked);
  EXPECT_EQ(chunked, whole);
}

}  // namespace
}  // namespace vanet::util
