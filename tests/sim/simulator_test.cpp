#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace vanet::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.pendingCount(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.scheduleAt(SimTime::seconds(3.0), [&] { order.push_back(3); });
  sim.scheduleAt(SimTime::seconds(1.0), [&] { order.push_back(1); });
  sim.scheduleAt(SimTime::seconds(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::seconds(3.0));
}

TEST(SimulatorTest, EqualTimestampsFireInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  const SimTime t = SimTime::seconds(1.0);
  for (int i = 0; i < 10; ++i) {
    sim.scheduleAt(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen{};
  sim.scheduleAt(SimTime::seconds(5.0), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::seconds(5.0));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime seen{};
  sim.scheduleAt(SimTime::seconds(1.0), [&] {
    sim.scheduleAfter(SimTime::seconds(2.0), [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, SimTime::seconds(3.0));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.scheduleAt(SimTime::seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(sim.isPending(id));
  sim.cancel(id);
  EXPECT_FALSE(sim.isPending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
  Simulator sim;
  const EventId id = sim.scheduleAt(SimTime::seconds(1.0), [] {});
  sim.run();
  sim.cancel(id);  // must not crash
  EXPECT_FALSE(sim.isPending(id));
}

TEST(SimulatorTest, CancelFromWithinEvent) {
  Simulator sim;
  bool fired = false;
  const EventId victim =
      sim.scheduleAt(SimTime::seconds(2.0), [&] { fired = true; });
  sim.scheduleAt(SimTime::seconds(1.0), [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.scheduleAt(SimTime::seconds(1.0), [&] { ++count; });
  sim.scheduleAt(SimTime::seconds(2.0), [&] { ++count; });
  sim.scheduleAt(SimTime::seconds(3.0), [&] { ++count; });
  sim.runUntil(SimTime::seconds(2.0));
  EXPECT_EQ(count, 2);  // 2.0 inclusive
  EXPECT_EQ(sim.now(), SimTime::seconds(2.0));
  EXPECT_EQ(sim.pendingCount(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithEmptyQueue) {
  Simulator sim;
  sim.runUntil(SimTime::seconds(10.0));
  EXPECT_EQ(sim.now(), SimTime::seconds(10.0));
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  sim.scheduleAt(SimTime::seconds(1.0), [&] {
    ++count;
    sim.stop();
  });
  sim.scheduleAt(SimTime::seconds(2.0), [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pendingCount(), 1u);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.scheduleAt(SimTime::seconds(1.0), [&] { ++count; });
  sim.scheduleAt(SimTime::seconds(2.0), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, EventsScheduledFromEventsRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) {
      sim.scheduleAfter(SimTime::millis(1.0), recurse);
    }
  };
  sim.scheduleAt(SimTime::zero(), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.executedCount(), 100u);
}

TEST(SimulatorTest, PendingCountExcludesCancelled) {
  Simulator sim;
  const EventId a = sim.scheduleAt(SimTime::seconds(1.0), [] {});
  sim.scheduleAt(SimTime::seconds(2.0), [] {});
  EXPECT_EQ(sim.pendingCount(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pendingCount(), 1u);
}

TEST(SimulatorTest, CancelledTimersDoNotGrowTheQueueUnboundedly) {
  // Regression: a long round churning through schedule-then-cancel
  // timers (the C-ARQ timeout pattern) used to leave every cancelled
  // entry in the queue until its far-future timestamp popped. The eager
  // compaction must keep the queue O(pending), not O(ever cancelled).
  Simulator sim;
  // One long-lived live event, far in the future.
  sim.scheduleAt(SimTime::seconds(1e6), [] {});
  std::size_t peakDepth = 0;
  for (int batch = 0; batch < 200; ++batch) {
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i) {
      ids.push_back(sim.scheduleAt(SimTime::seconds(1e5 + batch), [] {}));
    }
    for (const EventId id : ids) {
      sim.cancel(id);
    }
    peakDepth = std::max(peakDepth, sim.queueDepth());
  }
  // 20000 timers were cancelled; the queue never held more than the one
  // live event plus the compaction slack (64) plus one in-flight batch.
  EXPECT_EQ(sim.pendingCount(), 1u);
  EXPECT_LE(sim.queueDepth(), 166u);
  EXPECT_LE(peakDepth, 266u);
  sim.run();
  EXPECT_EQ(sim.queueDepth(), 0u);
}

TEST(SimulatorTest, CompactionPreservesOrderAndLiveEvents) {
  // Interleave live and cancelled timers past the compaction threshold
  // and verify the survivors still fire in exact (time, insertion) order.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> victims;
  for (int i = 0; i < 500; ++i) {
    const int slot = 500 - i;  // reverse time order to stress the heap
    if (i % 5 == 0) {
      sim.scheduleAt(SimTime::millis(slot), [&order, slot] {
        order.push_back(slot);
      });
    } else {
      victims.push_back(sim.scheduleAt(SimTime::millis(slot), [] {}));
    }
  }
  for (const EventId id : victims) {
    sim.cancel(id);  // 400 cancellations force several compactions
  }
  sim.run();
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
}

// Property: random schedules always execute in non-decreasing time order.
class SimulatorOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorOrderProperty, MonotoneExecution) {
  Simulator sim;
  vanet::Rng rng{GetParam()};
  std::vector<double> firedAt;
  for (int i = 0; i < 500; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    sim.scheduleAt(SimTime::seconds(t),
                   [&firedAt, &sim] { firedAt.push_back(sim.now().toSeconds()); });
  }
  sim.run();
  ASSERT_EQ(firedAt.size(), 500u);
  for (std::size_t i = 1; i < firedAt.size(); ++i) {
    EXPECT_LE(firedAt[i - 1], firedAt[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOrderProperty,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 99ULL));

}  // namespace
}  // namespace vanet::sim
