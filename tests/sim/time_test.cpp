#include "sim/time.h"

#include <gtest/gtest.h>

#include <sstream>

namespace vanet::sim {
namespace {

TEST(SimTimeTest, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t.ns(), 0);
  EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTimeTest, UnitConversions) {
  EXPECT_EQ(SimTime::seconds(1.0).ns(), 1'000'000'000);
  EXPECT_EQ(SimTime::millis(1.0).ns(), 1'000'000);
  EXPECT_EQ(SimTime::micros(1.0).ns(), 1'000);
  EXPECT_EQ(SimTime::nanos(17).ns(), 17);
}

TEST(SimTimeTest, RoundTripSeconds) {
  const SimTime t = SimTime::seconds(12.345678912);
  EXPECT_NEAR(t.toSeconds(), 12.345678912, 1e-9);
  EXPECT_NEAR(t.toMillis(), 12345.678912, 1e-6);
}

TEST(SimTimeTest, RoundsToNearestNanosecond) {
  EXPECT_EQ(SimTime::micros(0.0015).ns(), 2);  // 1.5 ns rounds up
  EXPECT_EQ(SimTime::micros(0.0004).ns(), 0);
}

TEST(SimTimeTest, NegativeDurations) {
  const SimTime t = SimTime::seconds(-2.5);
  EXPECT_EQ(t.ns(), -2'500'000'000);
  EXPECT_LT(t, SimTime::zero());
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::seconds(2.0);
  const SimTime b = SimTime::millis(500.0);
  EXPECT_EQ((a + b).toSeconds(), 2.5);
  EXPECT_EQ((a - b).toSeconds(), 1.5);
  EXPECT_EQ((b * 4).toSeconds(), 2.0);
  EXPECT_EQ((4 * b).toSeconds(), 2.0);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c.toSeconds(), 2.5);
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::millis(1.0), SimTime::millis(2.0));
  EXPECT_LE(SimTime::millis(2.0), SimTime::millis(2.0));
  EXPECT_GT(SimTime::seconds(1.0), SimTime::millis(999.0));
  EXPECT_EQ(SimTime::seconds(0.001), SimTime::millis(1.0));
}

TEST(SimTimeTest, MaxIsLaterThanEverything) {
  EXPECT_GT(SimTime::max(), SimTime::seconds(1e9));
}

TEST(SimTimeTest, StreamOutput) {
  std::ostringstream os;
  os << SimTime::seconds(1.5);
  EXPECT_EQ(os.str(), "1.5s");
}

}  // namespace
}  // namespace vanet::sim
