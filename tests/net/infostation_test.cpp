#include "net/infostation.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "../testing/medium_fixture.h"
#include "net/node.h"

namespace vanet::net {
namespace {

using channel::PhyMode;
using sim::SimTime;

struct ApHarness {
  ApHarness()
      : link(vanet::testing::perfectLinkModel()),
        environment(sim, *link, Rng{1}.child("medium")),
        apMobility(geom::Vec2{0.0, 0.0}),
        apNode(sim, environment, kFirstApId, &apMobility, mac::RadioConfig{},
               mac::MacConfig{}, Rng{2}),
        carMobility(geom::Vec2{30.0, 0.0}),
        carNode(sim, environment, 1, &carMobility, mac::RadioConfig{},
                mac::MacConfig{}, Rng{3}) {}

  sim::Simulator sim;
  std::unique_ptr<channel::LinkModel> link;
  mac::RadioEnvironment environment;
  mobility::StaticMobility apMobility;
  Node apNode;
  mobility::StaticMobility carMobility;
  Node carNode;
};

InfostationConfig baseConfig() {
  InfostationConfig config;
  config.flows = {1, 2, 3};
  config.packetsPerSecondPerFlow = 5.0;
  config.payloadBytes = 1000;
  config.start = SimTime::seconds(1.0);
  config.stop = SimTime::seconds(3.0);
  return config;
}

TEST(InfostationTest, RoundRobinAcrossFlows) {
  ApHarness h;
  std::vector<FlowId> flowOrder;
  InfostationServer server(h.apNode, baseConfig(),
                           [&](FlowId flow, SeqNo, int, SimTime) {
                             flowOrder.push_back(flow);
                           });
  server.start();
  h.sim.runUntil(SimTime::seconds(1.35));
  ASSERT_GE(flowOrder.size(), 5u);
  EXPECT_EQ(flowOrder[0], 1);
  EXPECT_EQ(flowOrder[1], 2);
  EXPECT_EQ(flowOrder[2], 3);
  EXPECT_EQ(flowOrder[3], 1);
  EXPECT_EQ(flowOrder[4], 2);
}

TEST(InfostationTest, AggregateRateIsFlowsTimesPerFlowRate) {
  ApHarness h;
  int frames = 0;
  InfostationServer server(h.apNode, baseConfig(),
                           [&](FlowId, SeqNo, int, SimTime) { ++frames; });
  server.start();
  h.sim.runUntil(SimTime::seconds(3.5));
  // 2 s of activity at 15 frames/s.
  EXPECT_NEAR(frames, 30, 1);
}

TEST(InfostationTest, SequenceNumbersPerFlowStartAtOneAndIncrement) {
  ApHarness h;
  std::map<FlowId, std::vector<SeqNo>> seqs;
  InfostationServer server(h.apNode, baseConfig(),
                           [&](FlowId flow, SeqNo seq, int, SimTime) {
                             seqs[flow].push_back(seq);
                           });
  server.start();
  h.sim.runUntil(SimTime::seconds(3.0));
  for (const auto& [flow, list] : seqs) {
    ASSERT_FALSE(list.empty());
    EXPECT_EQ(list.front(), 1);
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_EQ(list[i], list[i - 1] + 1) << "flow " << flow;
    }
  }
}

TEST(InfostationTest, StopsAtConfiguredStop) {
  ApHarness h;
  SimTime lastTx{};
  InfostationServer server(
      h.apNode, baseConfig(),
      [&](FlowId, SeqNo, int, SimTime at) { lastTx = at; });
  server.start();
  h.sim.run();
  EXPECT_LT(lastTx, SimTime::seconds(3.0));
  EXPECT_GT(lastTx, SimTime::seconds(2.7));
}

TEST(InfostationTest, RepeatCountSendsCopiesWithinSameBudget) {
  ApHarness h;
  InfostationConfig config = baseConfig();
  config.repeatCount = 2;
  std::map<FlowId, std::vector<std::pair<SeqNo, int>>> log;
  InfostationServer server(h.apNode, config,
                           [&](FlowId flow, SeqNo seq, int copy, SimTime) {
                             log[flow].emplace_back(seq, copy);
                           });
  server.start();
  int frames = 0;
  h.sim.runUntil(SimTime::seconds(3.5));
  for (const auto& [flow, list] : log) {
    frames += static_cast<int>(list.size());
    // Each seq appears as copy 0 then copy 1 before the next seq.
    for (std::size_t i = 0; i + 1 < list.size(); i += 2) {
      EXPECT_EQ(list[i].first, list[i + 1].first);
      EXPECT_EQ(list[i].second, 0);
      EXPECT_EQ(list[i + 1].second, 1);
    }
  }
  EXPECT_NEAR(frames, 30, 1);  // channel budget unchanged
}

TEST(InfostationTest, FileCyclingWrapsSequenceSpace) {
  ApHarness h;
  InfostationConfig config = baseConfig();
  config.flows = {1};
  config.packetsPerSecondPerFlow = 20.0;
  config.cycleLength = 5;
  config.stop = SimTime::seconds(2.0);
  std::vector<SeqNo> seqs;
  InfostationServer server(h.apNode, config,
                           [&](FlowId, SeqNo seq, int, SimTime) {
                             seqs.push_back(seq);
                           });
  server.start();
  h.sim.runUntil(SimTime::seconds(2.5));
  ASSERT_GE(seqs.size(), 15u);
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], static_cast<SeqNo>(1 + i % 5));
  }
}

TEST(InfostationTest, FramesActuallyReachTheAir) {
  ApHarness h;
  int rx = 0;
  h.carNode.mac().setRxHandler(
      [&rx](const mac::Frame& f, const mac::RxInfo&) {
        if (f.kind == mac::FrameKind::kData) ++rx;
      });
  InfostationServer server(h.apNode, baseConfig(), nullptr);
  server.start();
  h.sim.run();
  EXPECT_NEAR(rx, 30, 2);  // clean channel: nearly everything decodes
}

TEST(InfostationTest, NextSeqReportsUpcoming) {
  ApHarness h;
  InfostationServer server(h.apNode, baseConfig(), nullptr);
  EXPECT_EQ(server.nextSeq(1), 1);
  server.start();
  h.sim.runUntil(SimTime::seconds(1.5));
  EXPECT_GT(server.nextSeq(1), 1);
}

}  // namespace
}  // namespace vanet::net
