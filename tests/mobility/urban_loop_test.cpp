#include "mobility/urban_loop.h"

#include <gtest/gtest.h>

namespace vanet::mobility {
namespace {

using sim::SimTime;

UrbanLoopConfig defaultConfig() { return UrbanLoopConfig{}; }

TEST(UrbanLoopTest, LapGeometry) {
  const UrbanLoopScenario scenario(defaultConfig(), 42);
  const auto& path = scenario.path();
  EXPECT_DOUBLE_EQ(scenario.lapLength(), 2 * 160.0 + 2 * 90.0);
  // The round path is two consecutive laps (cars never park mid-round).
  EXPECT_DOUBLE_EQ(path.length(), 2.0 * scenario.lapLength());
  // Each lap starts and ends at (0, loopHeight).
  EXPECT_EQ(path.vertices().front(), (geom::Vec2{0.0, 90.0}));
  EXPECT_EQ(path.vertices().back(), (geom::Vec2{0.0, 90.0}));
  EXPECT_EQ(path.pointAt(scenario.lapLength()), (geom::Vec2{0.0, 90.0}));
  // Covered street spans [H, H+W] and lies on y = 0.
  EXPECT_EQ(path.pointAt(scenario.coveredStreetBeginArc()),
            (geom::Vec2{0.0, 0.0}));
  EXPECT_EQ(path.pointAt(scenario.coveredStreetEndArc()),
            (geom::Vec2{160.0, 0.0}));
}

TEST(UrbanLoopTest, ApSitsBehindTheKerb) {
  const UrbanLoopScenario scenario(defaultConfig(), 42);
  const geom::Vec2 ap = scenario.apPosition();
  EXPECT_DOUBLE_EQ(ap.x, 80.0);
  EXPECT_DOUBLE_EQ(ap.y, -8.0);
}

TEST(UrbanLoopTest, RoundIsDeterministicPerSeed) {
  const UrbanLoopScenario scenario(defaultConfig(), 42);
  const UrbanRound a = scenario.makeRound(3);
  const UrbanRound b = scenario.makeRound(3);
  ASSERT_EQ(a.cars.size(), b.cars.size());
  EXPECT_EQ(a.flowStart, b.flowStart);
  EXPECT_EQ(a.roundEnd, b.roundEnd);
  for (std::size_t i = 0; i < a.cars.size(); ++i) {
    for (double t = 0.0; t < 120.0; t += 7.0) {
      EXPECT_EQ(a.cars[i]->positionAt(SimTime::seconds(t)),
                b.cars[i]->positionAt(SimTime::seconds(t)));
    }
  }
}

TEST(UrbanLoopTest, RoundsDifferFromEachOther) {
  const UrbanLoopScenario scenario(defaultConfig(), 42);
  const UrbanRound a = scenario.makeRound(0);
  const UrbanRound b = scenario.makeRound(1);
  EXPECT_NE(a.cars[0]->arrivalTime(), b.cars[0]->arrivalTime());
}

TEST(UrbanLoopTest, CarsDepartInOrderAndNeverOvertake) {
  const UrbanLoopScenario scenario(defaultConfig(), 7);
  for (int round = 0; round < 5; ++round) {
    const UrbanRound r = scenario.makeRound(round);
    ASSERT_EQ(r.cars.size(), 3u);
    for (double t = 0.0; t < r.roundEnd.toSeconds(); t += 1.0) {
      const double s1 = r.cars[0]->arcAt(SimTime::seconds(t));
      const double s2 = r.cars[1]->arcAt(SimTime::seconds(t));
      const double s3 = r.cars[2]->arcAt(SimTime::seconds(t));
      EXPECT_GE(s1, s2 - 1e-9) << "round " << round << " t " << t;
      EXPECT_GE(s2, s3 - 1e-9) << "round " << round << " t " << t;
    }
  }
}

TEST(UrbanLoopTest, CornerCConvergenceShrinksCar3Gap) {
  const UrbanLoopScenario scenario(defaultConfig(), 11);
  double entryGapSum = 0.0;
  double exitGapSum = 0.0;
  const int rounds = 10;
  for (int round = 0; round < rounds; ++round) {
    const UrbanRound r = scenario.makeRound(round);
    // Time gap between car 2 and car 3 at street begin vs street end.
    const double begin = scenario.coveredStreetBeginArc();
    const double end = scenario.coveredStreetEndArc();
    const auto* car2 =
        dynamic_cast<const SchedulePathMobility*>(r.cars[1].get());
    const auto* car3 =
        dynamic_cast<const SchedulePathMobility*>(r.cars[2].get());
    ASSERT_NE(car2, nullptr);
    ASSERT_NE(car3, nullptr);
    entryGapSum +=
        (car3->timeAtArc(begin) - car2->timeAtArc(begin)).toSeconds();
    exitGapSum += (car3->timeAtArc(end) - car2->timeAtArc(end)).toSeconds();
  }
  const double entryGap = entryGapSum / rounds;
  const double exitGap = exitGapSum / rounds;
  EXPECT_GT(entryGap, 2.0);  // ~gapSeconds at corner C
  EXPECT_LT(exitGap, 1.8);   // converged by street end
  EXPECT_LT(exitGap, entryGap / 2.0);
}

TEST(UrbanLoopTest, FlowStartsBeforeCoverage) {
  const UrbanLoopScenario scenario(defaultConfig(), 13);
  const UrbanRound r = scenario.makeRound(0);
  const auto* leader =
      dynamic_cast<const SchedulePathMobility*>(r.cars[0].get());
  ASSERT_NE(leader, nullptr);
  // At flowStart the leader is still on the approach street (x == 0, y > 0).
  const geom::Vec2 pos = leader->positionAt(r.flowStart);
  EXPECT_DOUBLE_EQ(pos.x, 0.0);
  EXPECT_GT(pos.y, 0.0);
  EXPECT_LE(pos.y, scenario.config().flowTriggerLeadMetres + 1.0);
}

TEST(UrbanLoopTest, RoundEndsWhileCarsStillDrive) {
  // Cars must never be parked (co-located) during the simulated round:
  // the round ends while everyone is still in motion on lap two.
  const UrbanLoopScenario scenario(defaultConfig(), 17);
  const UrbanRound r = scenario.makeRound(2);
  for (const auto& car : r.cars) {
    EXPECT_GT(car->arrivalTime(), r.roundEnd);
    EXPECT_GT(car->speedAt(r.roundEnd), 0.0);
  }
  // And flows stop before the leader re-enters coverage on lap two.
  const auto* leader =
      dynamic_cast<const SchedulePathMobility*>(r.cars[0].get());
  const double lapTwoCoverageArc =
      scenario.lapLength() + scenario.coveredStreetBeginArc();
  EXPECT_LE(r.flowStop, leader->timeAtArc(lapTwoCoverageArc));
}

TEST(UrbanLoopTest, CarsKeepTheirGapsThroughTheDarkArea) {
  // The co-location artifact this guards against: if cars parked at the
  // lap end, inter-car distance would collapse to ~0 and even a dead
  // car-to-car channel could "recover" everything.
  const UrbanLoopScenario scenario(defaultConfig(), 23);
  const UrbanRound r = scenario.makeRound(1);
  for (double t = r.cars[0]->departureTime().toSeconds() + 30.0;
       t < r.roundEnd.toSeconds(); t += 2.0) {
    for (std::size_t i = 0; i + 1 < r.cars.size(); ++i) {
      const double d =
          geom::distance(r.cars[i]->positionAt(SimTime::seconds(t)),
                         r.cars[i + 1]->positionAt(SimTime::seconds(t)));
      EXPECT_GT(d, 1.5) << "cars " << i + 1 << "/" << i + 2 << " at t=" << t;
    }
  }
}

TEST(UrbanLoopTest, ConfigurablePlatoonSize) {
  UrbanLoopConfig config = defaultConfig();
  config.carCount = 6;
  const UrbanLoopScenario scenario(config, 19);
  const UrbanRound r = scenario.makeRound(0);
  EXPECT_EQ(r.cars.size(), 6u);
}

TEST(UrbanLoopTest, DisablingCornerCKeepsGaps) {
  UrbanLoopConfig config = defaultConfig();
  config.cornerCCloseGapSeconds = config.gapSeconds;  // disabled
  config.gapJitterSigma = 0.0;
  config.delayNoiseSigma = 0.0;
  const UrbanLoopScenario scenario(config, 23);
  const UrbanRound r = scenario.makeRound(0);
  const auto* car2 = dynamic_cast<const SchedulePathMobility*>(r.cars[1].get());
  const auto* car3 = dynamic_cast<const SchedulePathMobility*>(r.cars[2].get());
  const double begin = scenario.coveredStreetBeginArc();
  const double end = scenario.coveredStreetEndArc();
  const double entryGap =
      (car3->timeAtArc(begin) - car2->timeAtArc(begin)).toSeconds();
  const double exitGap =
      (car3->timeAtArc(end) - car2->timeAtArc(end)).toSeconds();
  EXPECT_NEAR(entryGap, exitGap, 0.5);
}

}  // namespace
}  // namespace vanet::mobility
