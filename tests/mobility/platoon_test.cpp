#include "mobility/platoon.h"

#include <gtest/gtest.h>

namespace vanet::mobility {
namespace {

using sim::SimTime;

TEST(SubdivideTest, SplitsLongSegments) {
  const geom::Polyline p{{{0.0, 0.0}, {100.0, 0.0}}};
  const geom::Polyline fine = subdivide(p, 10.0);
  EXPECT_EQ(fine.vertices().size(), 11u);
  EXPECT_DOUBLE_EQ(fine.length(), 100.0);
  EXPECT_EQ(fine.vertices().front(), p.vertices().front());
  EXPECT_EQ(fine.vertices().back(), p.vertices().back());
}

TEST(SubdivideTest, KeepsShortSegments) {
  const geom::Polyline p{{{0.0, 0.0}, {3.0, 0.0}, {3.0, 6.0}}};
  const geom::Polyline fine = subdivide(p, 10.0);
  EXPECT_EQ(fine.vertices().size(), 3u);
}

TEST(SubdivideTest, NoSegmentExceedsLimit) {
  const geom::Polyline p{{{0.0, 0.0}, {37.0, 0.0}, {37.0, 23.0}}};
  const geom::Polyline fine = subdivide(p, 5.0);
  const auto& v = fine.vertices();
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_LE(geom::distance(v[i - 1], v[i]), 5.0 + 1e-9);
  }
}

TEST(LeaderScheduleTest, MatchesBaseSpeedWithoutNoise) {
  Rng rng{1};
  const geom::Polyline p{{{0.0, 0.0}, {100.0, 0.0}}};
  const auto times =
      leaderVertexTimes(p, 10.0, 0.0, SimTime::seconds(2.0), rng);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], SimTime::seconds(2.0));
  EXPECT_NEAR(times[1].toSeconds(), 12.0, 1e-9);
}

TEST(LeaderScheduleTest, TimesStrictlyIncrease) {
  Rng rng{7};
  const geom::Polyline p =
      subdivide(geom::makeRectangleLoop(100.0, 50.0), 10.0);
  const auto times = leaderVertexTimes(p, 8.0, 0.3, SimTime::zero(), rng);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
}

TEST(FollowerScheduleTest, ConstantDelayShiftsTimes) {
  Rng rngLeader{1};
  Rng rngFollower{2};
  const geom::Polyline p{{{0.0, 0.0}, {50.0, 0.0}, {100.0, 0.0}}};
  const auto leader =
      leaderVertexTimes(p, 10.0, 0.0, SimTime::zero(), rngLeader);
  const auto follower = followerVertexTimes(p, leader, constantDelay(3.0),
                                            0.0, rngFollower);
  ASSERT_EQ(follower.size(), leader.size());
  for (std::size_t i = 0; i < leader.size(); ++i) {
    EXPECT_NEAR((follower[i] - leader[i]).toSeconds(), 3.0, 1e-9);
  }
}

TEST(FollowerScheduleTest, MonotoneEvenWithNoise) {
  Rng rngLeader{1};
  const geom::Polyline p =
      subdivide(geom::Polyline{{{0.0, 0.0}, {500.0, 0.0}}}, 5.0);
  const auto leader =
      leaderVertexTimes(p, 10.0, 0.1, SimTime::zero(), rngLeader);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng{seed};
    const auto follower =
        followerVertexTimes(p, leader, constantDelay(2.0), 0.5, rng);
    for (std::size_t i = 1; i < follower.size(); ++i) {
      EXPECT_GT(follower[i], follower[i - 1]) << "seed " << seed;
    }
  }
}

TEST(FollowerScheduleTest, NeverOvertakesReference) {
  Rng rngLeader{3};
  Rng rngFollower{4};
  const geom::Polyline p =
      subdivide(geom::Polyline{{{0.0, 0.0}, {300.0, 0.0}}}, 10.0);
  const auto leader =
      leaderVertexTimes(p, 10.0, 0.1, SimTime::zero(), rngLeader);
  const auto follower = followerVertexTimes(p, leader, constantDelay(1.0),
                                            0.3, rngFollower);
  for (std::size_t i = 0; i < leader.size(); ++i) {
    EXPECT_GT(follower[i], leader[i]);
  }
}

TEST(DelayProfileTest, ConstantDelay) {
  const DelayProfile d = constantDelay(4.0);
  EXPECT_DOUBLE_EQ(d(0.0), 4.0);
  EXPECT_DOUBLE_EQ(d(1e6), 4.0);
}

TEST(DelayProfileTest, RampDelayInterpolates) {
  const DelayProfile d = rampDelay(4.0, 1.0, 100.0, 200.0);
  EXPECT_DOUBLE_EQ(d(0.0), 4.0);
  EXPECT_DOUBLE_EQ(d(100.0), 4.0);
  EXPECT_DOUBLE_EQ(d(150.0), 2.5);
  EXPECT_DOUBLE_EQ(d(200.0), 1.0);
  EXPECT_DOUBLE_EQ(d(500.0), 1.0);
}

TEST(DelayProfileTest, RampCanOpenGaps) {
  const DelayProfile d = rampDelay(1.0, 5.0, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(d(5.0), 3.0);
  EXPECT_LT(d(0.0), d(10.0));
}

}  // namespace
}  // namespace vanet::mobility
