#include "mobility/path_mobility.h"

#include <gtest/gtest.h>

namespace vanet::mobility {
namespace {

using sim::SimTime;

SchedulePathMobility straightLine() {
  // 100 m straight road covered in 10 s (10 m/s).
  return SchedulePathMobility{
      geom::Polyline{{{0.0, 0.0}, {100.0, 0.0}}},
      {SimTime::seconds(5.0), SimTime::seconds(15.0)}};
}

TEST(SchedulePathMobilityTest, WaitsAtStartBeforeDeparture) {
  const auto m = straightLine();
  EXPECT_EQ(m.positionAt(SimTime::zero()), (geom::Vec2{0.0, 0.0}));
  EXPECT_EQ(m.positionAt(SimTime::seconds(4.9)), (geom::Vec2{0.0, 0.0}));
  EXPECT_DOUBLE_EQ(m.speedAt(SimTime::seconds(1.0)), 0.0);
}

TEST(SchedulePathMobilityTest, ParksAtEndAfterArrival) {
  const auto m = straightLine();
  EXPECT_EQ(m.positionAt(SimTime::seconds(15.0)), (geom::Vec2{100.0, 0.0}));
  EXPECT_EQ(m.positionAt(SimTime::seconds(100.0)), (geom::Vec2{100.0, 0.0}));
  EXPECT_DOUBLE_EQ(m.speedAt(SimTime::seconds(20.0)), 0.0);
}

TEST(SchedulePathMobilityTest, LinearProgressBetweenVertices) {
  const auto m = straightLine();
  EXPECT_NEAR(m.positionAt(SimTime::seconds(10.0)).x, 50.0, 1e-9);
  EXPECT_NEAR(m.arcAt(SimTime::seconds(7.5)), 25.0, 1e-9);
  EXPECT_NEAR(m.speedAt(SimTime::seconds(10.0)), 10.0, 1e-9);
}

TEST(SchedulePathMobilityTest, PerSegmentSpeeds) {
  // Two segments at different speeds: 10 m in 1 s, then 10 m in 5 s.
  const SchedulePathMobility m{
      geom::Polyline{{{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}}},
      {SimTime::zero(), SimTime::seconds(1.0), SimTime::seconds(6.0)}};
  EXPECT_NEAR(m.speedAt(SimTime::seconds(0.5)), 10.0, 1e-9);
  EXPECT_NEAR(m.speedAt(SimTime::seconds(3.0)), 2.0, 1e-9);
}

TEST(SchedulePathMobilityTest, TimeAtArcIsInverse) {
  const auto m = straightLine();
  for (double s = 0.0; s <= 100.0; s += 12.5) {
    const SimTime t = m.timeAtArc(s);
    EXPECT_NEAR(m.arcAt(t), s, 1e-6) << "arc " << s;
  }
}

TEST(SchedulePathMobilityTest, TimeAtArcClampsToSchedule) {
  const auto m = straightLine();
  EXPECT_EQ(m.timeAtArc(-5.0), SimTime::seconds(5.0));
  EXPECT_EQ(m.timeAtArc(1e9), SimTime::seconds(15.0));
}

TEST(SchedulePathMobilityTest, DepartureAndArrival) {
  const auto m = straightLine();
  EXPECT_EQ(m.departureTime(), SimTime::seconds(5.0));
  EXPECT_EQ(m.arrivalTime(), SimTime::seconds(15.0));
}

TEST(SchedulePathMobilityTest, ContinuityProperty) {
  // |pos(t+dt) - pos(t)| <= vmax * dt for a fine sweep.
  const SchedulePathMobility m{
      geom::Polyline{{{0.0, 0.0}, {30.0, 0.0}, {30.0, 40.0}}},
      {SimTime::zero(), SimTime::seconds(3.0), SimTime::seconds(11.0)}};
  const double vmax = 10.0 + 1e-9;  // fastest segment is 10 m/s
  const double dt = 0.05;
  for (double t = -1.0; t < 13.0; t += dt) {
    const geom::Vec2 p0 = m.positionAt(SimTime::seconds(t));
    const geom::Vec2 p1 = m.positionAt(SimTime::seconds(t + dt));
    EXPECT_LE(geom::distance(p0, p1), vmax * dt + 1e-6) << "t=" << t;
  }
}

TEST(StaticMobilityTest, NeverMoves) {
  const StaticMobility m{{7.0, -3.0}};
  EXPECT_EQ(m.positionAt(SimTime::zero()), (geom::Vec2{7.0, -3.0}));
  EXPECT_EQ(m.positionAt(SimTime::seconds(1e6)), (geom::Vec2{7.0, -3.0}));
  EXPECT_DOUBLE_EQ(m.speedAt(SimTime::seconds(5.0)), 0.0);
}

TEST(SchedulePathMobilityDeathTest, RejectsMismatchedSchedule) {
  EXPECT_DEATH(SchedulePathMobility(
                   geom::Polyline{{{0.0, 0.0}, {1.0, 0.0}}},
                   {SimTime::zero()}),
               "one arrival time per path vertex");
}

TEST(SchedulePathMobilityDeathTest, RejectsNonMonotoneTimes) {
  EXPECT_DEATH(SchedulePathMobility(
                   geom::Polyline{{{0.0, 0.0}, {1.0, 0.0}}},
                   {SimTime::seconds(2.0), SimTime::seconds(1.0)}),
               "strictly increasing");
}

}  // namespace
}  // namespace vanet::mobility
