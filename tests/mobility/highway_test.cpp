#include "mobility/highway.h"

#include <gtest/gtest.h>

namespace vanet::mobility {
namespace {

using sim::SimTime;

TEST(HighwayTest, RoadAndApLayout) {
  const HighwayScenario scenario(HighwayConfig{}, 42);
  EXPECT_DOUBLE_EQ(scenario.path().length(), 6000.0);
  EXPECT_DOUBLE_EQ(scenario.apArc(0), 500.0);
  EXPECT_DOUBLE_EQ(scenario.apArc(4), 4500.0);
}

TEST(HighwayTest, RoundHasApsOffTheRoad) {
  const HighwayScenario scenario(HighwayConfig{}, 42);
  const HighwayRound r = scenario.makeRound(0);
  ASSERT_EQ(r.apPositions.size(), 5u);
  for (const auto& ap : r.apPositions) {
    EXPECT_DOUBLE_EQ(ap.y, -12.0);
  }
  EXPECT_DOUBLE_EQ(r.apPositions[1].x - r.apPositions[0].x, 1000.0);
}

TEST(HighwayTest, CarsTraverseWholeRoad) {
  const HighwayScenario scenario(HighwayConfig{}, 7);
  const HighwayRound r = scenario.makeRound(0);
  for (const auto& car : r.cars) {
    EXPECT_EQ(car->positionAt(SimTime::zero()).x, 0.0);
    EXPECT_EQ(car->positionAt(r.roundEnd).x, 6000.0);
  }
}

TEST(HighwayTest, PlatoonOrderPreserved) {
  const HighwayScenario scenario(HighwayConfig{}, 11);
  const HighwayRound r = scenario.makeRound(1);
  for (double t = 0.0; t < r.roundEnd.toSeconds(); t += 5.0) {
    double prev = 1e18;
    for (const auto& car : r.cars) {
      const double s = car->arcAt(SimTime::seconds(t));
      EXPECT_LE(s, prev + 1e-9);
      prev = s;
    }
  }
}

TEST(HighwayTest, SpeedRoughlyMatchesConfig) {
  HighwayConfig config;
  config.speedMps = 30.0;
  config.edgeSpeedSigma = 0.0;
  const HighwayScenario scenario(config, 3);
  const HighwayRound r = scenario.makeRound(0);
  const auto* leader = r.cars[0].get();
  const double travel =
      (leader->arrivalTime() - leader->departureTime()).toSeconds();
  EXPECT_NEAR(travel, 6000.0 / 30.0, 1.0);
}

TEST(HighwayTest, DeterministicRounds) {
  const HighwayScenario scenario(HighwayConfig{}, 5);
  const HighwayRound a = scenario.makeRound(2);
  const HighwayRound b = scenario.makeRound(2);
  EXPECT_EQ(a.cars[0]->arrivalTime(), b.cars[0]->arrivalTime());
  EXPECT_EQ(a.roundEnd, b.roundEnd);
}

TEST(HighwayDeathTest, ApsMustFitOnRoad) {
  HighwayConfig config;
  config.roadLengthMetres = 1000.0;
  config.apCount = 5;
  config.apSpacing = 1000.0;
  EXPECT_DEATH(HighwayScenario(config, 1), "APs must fit");
}

}  // namespace
}  // namespace vanet::mobility
