#include "runner/sweep.h"

#include <gtest/gtest.h>

namespace vanet::runner {
namespace {

TEST(SweepGridTest, EmptyGridIsOnePoint) {
  const SweepGrid grid;
  EXPECT_EQ(grid.axisCount(), 0u);
  EXPECT_EQ(grid.pointCount(), 1u);
  const std::vector<ParamSet> points = grid.expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].size(), 0u);
}

TEST(SweepGridTest, PointCountIsProductOfAxisSizes) {
  SweepGrid grid;
  grid.add("speed_kmh", {20, 40, 60}).add("coop", {0, 1}).add("cars", {2, 3});
  EXPECT_EQ(grid.axisCount(), 3u);
  EXPECT_EQ(grid.pointCount(), 12u);
  EXPECT_EQ(grid.expand().size(), 12u);
}

TEST(SweepGridTest, FirstAxisVariesSlowest) {
  SweepGrid grid;
  grid.add("a", {1, 2}).add("b", {10, 20, 30});
  const std::vector<ParamSet> points = grid.expand();
  ASSERT_EQ(points.size(), 6u);
  // Nested-loop order: a=1 with every b, then a=2 with every b.
  EXPECT_EQ(points[0].get("a", 0), 1);
  EXPECT_EQ(points[0].get("b", 0), 10);
  EXPECT_EQ(points[1].get("b", 0), 20);
  EXPECT_EQ(points[2].get("b", 0), 30);
  EXPECT_EQ(points[3].get("a", 0), 2);
  EXPECT_EQ(points[3].get("b", 0), 10);
  EXPECT_EQ(points[5].get("a", 0), 2);
  EXPECT_EQ(points[5].get("b", 0), 30);
}

TEST(SweepGridTest, PointMatchesExpand) {
  SweepGrid grid;
  grid.add("x", {5, 6, 7}).add("y", {0.5, 1.5});
  const std::vector<ParamSet> points = grid.expand();
  for (std::size_t i = 0; i < grid.pointCount(); ++i) {
    EXPECT_EQ(grid.point(i).values(), points[i].values()) << "point " << i;
  }
}

TEST(SweepGridTest, BaseParamsCarryThroughAndAxesOverride) {
  ParamSet base;
  base.set("rounds", 7);
  base.set("speed_kmh", 999);  // overridden by the axis
  SweepGrid grid;
  grid.add("speed_kmh", {20, 40});
  const std::vector<ParamSet> points = grid.expand(base);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].get("rounds", 0), 7);
  EXPECT_EQ(points[0].get("speed_kmh", 0), 20);
  EXPECT_EQ(points[1].get("speed_kmh", 0), 40);
}

TEST(SweepGridTest, SingleValueAxesCollapseToOnePoint) {
  SweepGrid grid;
  grid.add("a", {1}).add("b", {2}).add("c", {3});
  EXPECT_EQ(grid.pointCount(), 1u);
  const ParamSet point = grid.point(0);
  EXPECT_EQ(point.get("a", 0), 1);
  EXPECT_EQ(point.get("b", 0), 2);
  EXPECT_EQ(point.get("c", 0), 3);
}

TEST(ParamSetTest, GettersAndOverrides) {
  ParamSet params{{"a", 1.5}, {"b", 0.0}};
  EXPECT_TRUE(params.has("a"));
  EXPECT_FALSE(params.has("c"));
  EXPECT_DOUBLE_EQ(params.get("a", 0), 1.5);
  EXPECT_DOUBLE_EQ(params.get("c", 9), 9);
  EXPECT_EQ(params.getInt("a", 0), 1);
  EXPECT_FALSE(params.getBool("b", true));
  EXPECT_TRUE(params.getBool("c", true));
  ParamSet overrides{{"b", 2.0}, {"c", 3.0}};
  params.apply(overrides);
  EXPECT_DOUBLE_EQ(params.get("b", 0), 2.0);
  EXPECT_DOUBLE_EQ(params.get("c", 0), 3.0);
  EXPECT_DOUBLE_EQ(params.get("a", 0), 1.5);
}

}  // namespace
}  // namespace vanet::runner
