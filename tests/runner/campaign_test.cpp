#include "runner/campaign.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "runner/emit.h"
#include "util/rng.h"

namespace vanet::runner {
namespace {

/// A small but real campaign: 2x2 urban grid, 2 replications, tiny rounds.
CampaignConfig tinyUrbanCampaign() {
  CampaignConfig config;
  config.scenario = "urban";
  config.masterSeed = 2008;
  config.replications = 2;
  config.base.set("rounds", 2);
  config.base.set("cars", 2);
  config.grid.add("speed_kmh", {20.0, 30.0}).add("coop", {0.0, 1.0});
  return config;
}

TEST(CampaignTest, RunsEveryJobAndMergesPerPoint) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 1;
  const CampaignResult result = runCampaign(config);
  EXPECT_EQ(result.jobCount, 8u);  // 4 grid points x 2 replications
  ASSERT_EQ(result.points.size(), 4u);
  for (const GridPointSummary& point : result.points) {
    EXPECT_EQ(point.replications, 2);
    EXPECT_EQ(point.rounds, 4);  // 2 replications x 2 rounds
    EXPECT_EQ(point.table1.rounds, 4);
    EXPECT_EQ(point.table1.rows.size(), 2u);  // 2 cars
    // Each job contributes one sample per scalar metric.
    EXPECT_EQ(point.metrics.at("pct_lost_before").count(), 2u);
  }
  EXPECT_GE(result.wallSeconds, 0.0);
  EXPECT_GT(result.jobsPerSecond, 0.0);
}

TEST(CampaignTest, TwoThreadsProduceByteIdenticalMergedStats) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 1;
  const CampaignResult serial = runCampaign(config);
  config.threads = 2;
  const CampaignResult parallel = runCampaign(config);
  EXPECT_EQ(serial.threads, 1);
  EXPECT_EQ(parallel.threads, 2);
  // The emitted artefacts render every merged statistic at full precision,
  // so string equality is bit-identity of the merged campaign.
  EXPECT_EQ(campaignPointsJson(serial), campaignPointsJson(parallel));
  EXPECT_EQ(campaignCsv(serial), campaignCsv(parallel));
}

TEST(CampaignTest, MasterSeedChangesResults) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult a = runCampaign(config);
  config.masterSeed = 2009;
  const CampaignResult b = runCampaign(config);
  EXPECT_NE(campaignPointsJson(a), campaignPointsJson(b));
}

TEST(CampaignTest, ReplicationsUseDistinctSeeds) {
  // The per-job stream seeds are a pure function of (master, index) and
  // must not collide across a realistic campaign size.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t job = 0; job < 10000; ++job) {
    seeds.insert(Rng::deriveStreamSeed(2008, job));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(CampaignTest, GridPointsKeepDeclarationOrder) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult result = runCampaign(config);
  // speed_kmh varies slowest (declared first), coop fastest.
  EXPECT_DOUBLE_EQ(result.points[0].params.get("speed_kmh", 0), 20.0);
  EXPECT_DOUBLE_EQ(result.points[0].params.get("coop", -1), 0.0);
  EXPECT_DOUBLE_EQ(result.points[1].params.get("coop", -1), 1.0);
  EXPECT_DOUBLE_EQ(result.points[2].params.get("speed_kmh", 0), 30.0);
  EXPECT_DOUBLE_EQ(result.points[3].params.get("coop", -1), 1.0);
}

TEST(CampaignTest, ScenarioDefaultsResolveIntoPointParams) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult result = runCampaign(config);
  // "gossip" was never set by the campaign; the registered default lands
  // in the resolved params so emitted rows are self-describing.
  EXPECT_TRUE(result.points[0].params.has("gossip"));
  EXPECT_EQ(result.points[0].params.getInt("rounds", -1), 2);
}

TEST(CampaignTest, WorkerExceptionPropagates) {
  const std::string name = "campaign-test-throws";
  if (ScenarioRegistry::global().find(name) == nullptr) {
    ScenarioRegistry::global().add(ScenarioInfo{
        name,
        "always throws",
        {},
        [](const JobContext&) -> JobResult {
          throw std::runtime_error("job failed");
        }});
  }
  CampaignConfig config;
  config.scenario = name;
  config.replications = 3;
  config.threads = 2;
  EXPECT_THROW(runCampaign(config), std::runtime_error);
}

TEST(CampaignEmitTest, CsvHasHeaderAndOneRowPerPoint) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult result = runCampaign(config);
  const std::string csv = campaignCsv(result);
  const std::size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 1u + result.points.size());
  EXPECT_EQ(csv.rfind("grid_index,replications,total_rounds", 0), 0u);
  EXPECT_NE(csv.find("pct_lost_after_mean"), std::string::npos);
}

TEST(CampaignEmitTest, JsonCarriesHeaderAndPoints) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult result = runCampaign(config);
  const std::string json = campaignJson(result);
  EXPECT_NE(json.find("\"scenario\":\"urban\""), std::string::npos);
  EXPECT_NE(json.find("\"master_seed\":2008"), std::string::npos);
  EXPECT_NE(json.find("\"points\":["), std::string::npos);
  EXPECT_NE(json.find("\"pct_lost_after\""), std::string::npos);
  EXPECT_NE(json.find("\"table1\""), std::string::npos);
}

}  // namespace
}  // namespace vanet::runner
