#include "runner/campaign.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <set>
#include <stdexcept>

#include "obs/manifest.h"
#include "runner/emit.h"
#include "util/rng.h"

namespace vanet::runner {
namespace {

/// A small but real campaign: 2x2 urban grid, 2 replications, tiny rounds.
CampaignConfig tinyUrbanCampaign() {
  CampaignConfig config;
  config.scenario = "urban";
  config.masterSeed = 2008;
  config.replications = 2;
  config.base.set("rounds", 2);
  config.base.set("cars", 2);
  config.grid.add("speed_kmh", {20.0, 30.0}).add("coop", {0.0, 1.0});
  return config;
}

TEST(CampaignTest, RunsEveryJobAndMergesPerPoint) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 1;
  const CampaignResult result = runCampaign(config);
  EXPECT_EQ(result.jobCount, 8u);  // 4 grid points x 2 replications
  ASSERT_EQ(result.points.size(), 4u);
  for (const GridPointSummary& point : result.points) {
    EXPECT_EQ(point.replications, 2);
    EXPECT_EQ(point.rounds, 4);  // 2 replications x 2 rounds
    EXPECT_EQ(point.table1.rounds, 4);
    EXPECT_EQ(point.table1.rows.size(), 2u);  // 2 cars
    // Each job contributes one sample per scalar metric.
    EXPECT_EQ(point.metrics.at("pct_lost_before").count(), 2u);
  }
  EXPECT_GE(result.wallSeconds, 0.0);
  EXPECT_GT(result.jobsPerSecond, 0.0);
}

TEST(CampaignTest, TwoThreadsProduceByteIdenticalMergedStats) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 1;
  const CampaignResult serial = runCampaign(config);
  config.threads = 2;
  const CampaignResult parallel = runCampaign(config);
  EXPECT_EQ(serial.threads, 1);
  EXPECT_EQ(parallel.threads, 2);
  // The emitted artefacts render every merged statistic at full precision,
  // so string equality is bit-identity of the merged campaign.
  EXPECT_EQ(campaignPointsJson(serial), campaignPointsJson(parallel));
  EXPECT_EQ(campaignCsv(serial), campaignCsv(parallel));
}

TEST(CampaignTest, FigureSeriesMergeByteIdenticalAcrossThreads) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 1;
  const CampaignResult serial = runCampaign(config);
  config.threads = 2;
  const CampaignResult parallel = runCampaign(config);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    // The urban scenario reports one figure per car; merged in job order
    // they render byte-identically no matter how many threads ran.
    ASSERT_EQ(serial.points[p].figures.size(), 2u);
    ASSERT_EQ(parallel.points[p].figures.size(), 2u);
    for (const auto& [flow, figure] : serial.points[p].figures) {
      EXPECT_EQ(figureSeriesCsv(figure),
                figureSeriesCsv(parallel.points[p].figures.at(flow)));
    }
  }
}

TEST(CampaignTest, CasesExpandCaseMajorAndLandInSummaries) {
  CampaignConfig config;
  config.scenario = "urban";
  config.masterSeed = 2008;
  config.replications = 1;
  config.threads = 2;
  config.base.set("rounds", 1);
  config.base.set("cars", 2);
  config.cases = {{"plain", {{"coop", 0.0}}}, {"c-arq", {{"coop", 1.0}}}};
  config.grid.add("speed_kmh", {20.0, 30.0});
  const CampaignResult result = runCampaign(config);
  ASSERT_EQ(result.points.size(), 4u);  // 2 cases x 2 grid points
  EXPECT_EQ(result.points[0].caseName, "plain");
  EXPECT_DOUBLE_EQ(result.points[0].params.get("coop", -1), 0.0);
  EXPECT_DOUBLE_EQ(result.points[0].params.get("speed_kmh", 0), 20.0);
  EXPECT_EQ(result.points[1].caseName, "plain");
  EXPECT_DOUBLE_EQ(result.points[1].params.get("speed_kmh", 0), 30.0);
  EXPECT_EQ(result.points[2].caseName, "c-arq");
  EXPECT_DOUBLE_EQ(result.points[2].params.get("coop", -1), 1.0);
  // The case column appears in the CSV and JSON only for case campaigns.
  const std::string csv = campaignCsv(result);
  EXPECT_EQ(csv.rfind("grid_index,case,replications,total_rounds", 0), 0u);
  EXPECT_NE(campaignPointsJson(result).find("\"case\":\"c-arq\""),
            std::string::npos);
}

TEST(CampaignTest, CaseOverridesBeatBaseAndLoseToAxes) {
  CampaignConfig config;
  config.scenario = "urban";
  config.replications = 1;
  config.threads = 1;
  config.base.set("rounds", 1);
  config.base.set("cars", 2);
  config.base.set("max_coop", 4);
  config.cases = {{"capped", {{"max_coop", 2.0}, {"gossip", 1.0}}}};
  config.grid.add("gossip", {0.0});
  const CampaignResult result = runCampaign(config);
  ASSERT_EQ(result.points.size(), 1u);
  // case beats base...
  EXPECT_DOUBLE_EQ(result.points[0].params.get("max_coop", -1), 2.0);
  // ...but the swept axis beats the case.
  EXPECT_DOUBLE_EQ(result.points[0].params.get("gossip", -1), 0.0);
}

TEST(CampaignTest, MasterSeedChangesResults) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult a = runCampaign(config);
  config.masterSeed = 2009;
  const CampaignResult b = runCampaign(config);
  EXPECT_NE(campaignPointsJson(a), campaignPointsJson(b));
}

TEST(CampaignTest, ReplicationsUseDistinctSeeds) {
  // The per-job stream seeds are a pure function of (master, index) and
  // must not collide across a realistic campaign size.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t job = 0; job < 10000; ++job) {
    seeds.insert(Rng::deriveStreamSeed(2008, job));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(CampaignTest, GridPointsKeepDeclarationOrder) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult result = runCampaign(config);
  // speed_kmh varies slowest (declared first), coop fastest.
  EXPECT_DOUBLE_EQ(result.points[0].params.get("speed_kmh", 0), 20.0);
  EXPECT_DOUBLE_EQ(result.points[0].params.get("coop", -1), 0.0);
  EXPECT_DOUBLE_EQ(result.points[1].params.get("coop", -1), 1.0);
  EXPECT_DOUBLE_EQ(result.points[2].params.get("speed_kmh", 0), 30.0);
  EXPECT_DOUBLE_EQ(result.points[3].params.get("coop", -1), 1.0);
}

TEST(CampaignTest, ScenarioDefaultsResolveIntoPointParams) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult result = runCampaign(config);
  // "gossip" was never set by the campaign; the registered default lands
  // in the resolved params so emitted rows are self-describing.
  EXPECT_TRUE(result.points[0].params.has("gossip"));
  EXPECT_EQ(result.points[0].params.getInt("rounds", -1), 2);
}

TEST(CampaignTest, WorkerExceptionPropagates) {
  const std::string name = "campaign-test-throws";
  if (ScenarioRegistry::global().find(name) == nullptr) {
    ScenarioRegistry::global().add(ScenarioInfo{
        name,
        "always throws",
        {},
        [](const JobContext&) -> JobResult {
          throw std::runtime_error("job failed");
        }});
  }
  CampaignConfig config;
  config.scenario = name;
  config.replications = 3;
  // One worker, so job 0 deterministically fails first and the message
  // is stable enough to assert on.
  config.threads = 1;
  // The propagated error names the exact job -- global index, grid
  // point, replication -- so the operator can re-run it in isolation.
  try {
    runCampaign(config);
    FAIL() << "throwing scenario must fail the campaign";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("campaign job 0"), std::string::npos) << what;
    EXPECT_NE(what.find("grid point 0"), std::string::npos) << what;
    EXPECT_NE(what.find("replication 0"), std::string::npos) << what;
    EXPECT_NE(what.find("job failed"), std::string::npos) << what;
  }
}

TEST(CampaignEmitTest, WritesOneFigureCsvPerPointAndFlow) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult result = runCampaign(config);
  const std::string dir = ::testing::TempDir();
  // 4 grid points x 2 flows; multi-point campaigns embed the grid index.
  EXPECT_EQ(writeCampaignFigureCsvs(dir, "camp", result), 8u);
  std::ifstream in(dir + "/camp_p2_flow1.csv");
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "packet,rx_car1_mean,rx_car1_ci95,rx_car2_mean,rx_car2_ci95,"
            "after_coop_mean,after_coop_ci95,joint_mean,joint_ci95,joint_n");
}

TEST(CampaignEmitTest, CsvHasHeaderAndOneRowPerPoint) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult result = runCampaign(config);
  const std::string csv = campaignCsv(result);
  const std::size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 1u + result.points.size());
  EXPECT_EQ(csv.rfind("grid_index,replications,total_rounds", 0), 0u);
  EXPECT_NE(csv.find("pct_lost_after_mean"), std::string::npos);
}

TEST(CampaignEmitTest, ArtefactWritersDropManifestSidecars) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult result = runCampaign(config);
  const std::string path = ::testing::TempDir() + "/sidecar_probe.json";
  ASSERT_TRUE(writeCampaignJson(path, result));

  std::ifstream in(obs::manifestPathFor(path));
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const obs::RunManifest manifest = obs::manifestFromJson(text);
  EXPECT_EQ(manifest.artifact, path);
  EXPECT_EQ(manifest.scenario, "urban");
  EXPECT_EQ(manifest.masterSeed, 2008u);
  EXPECT_EQ(manifest.threads, 2);
  ASSERT_EQ(manifest.points.size(), result.points.size());
  for (std::size_t p = 0; p < manifest.points.size(); ++p) {
    EXPECT_EQ(manifest.points[p].gridIndex, result.points[p].gridIndex);
    EXPECT_EQ(manifest.points[p].replications, result.points[p].replications);
  }
  // The sidecar is a *separate* file: the artefact bytes stay the pure
  // render of the result, so byte-diff determinism checks are untouched.
  std::ifstream artefact(path);
  std::string artefactText((std::istreambuf_iterator<char>(artefact)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(artefactText, campaignJson(result));
}

TEST(CampaignEmitTest, JsonCarriesHeaderAndPoints) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 2;
  const CampaignResult result = runCampaign(config);
  const std::string json = campaignJson(result);
  EXPECT_NE(json.find("\"scenario\":\"urban\""), std::string::npos);
  EXPECT_NE(json.find("\"master_seed\":2008"), std::string::npos);
  EXPECT_NE(json.find("\"points\":["), std::string::npos);
  EXPECT_NE(json.find("\"pct_lost_after\""), std::string::npos);
  EXPECT_NE(json.find("\"table1\""), std::string::npos);
}

}  // namespace
}  // namespace vanet::runner
