/// \file spec_test.cpp
/// The declarative campaign-spec layer: normalized render <-> parse round
/// trips (byte-exact), every validation error path naming the offending
/// key, the committed specs under specs/ being fixed points of the
/// normalized form, and spec-derived CampaignConfigs planning the same
/// points and seeds as hand-assembled ones.

#include "runner/spec.h"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/plan.h"
#include "runner/registry.h"

namespace vanet::runner {
namespace {

CampaignSpec richSpec() {
  CampaignSpec spec;
  spec.name = "rich";
  spec.title = "a rich spec";
  spec.paperRef = "ICDCS'08 W";
  spec.scenario = "urban";
  spec.seed = 77;
  spec.replications = 4;
  spec.base.set("cars", 3);
  spec.base.set("rounds", 10);
  spec.cases = {{"plain", {}}, {"c-arq", {}}};
  spec.cases[0].overrides.set("coop", 0.0);
  spec.cases[1].overrides.set("coop", 1.0);
  spec.grid.add("speed_kmh", {20.0, 40.0});
  spec.targetCi = 0.05;
  spec.minReplications = 2;
  spec.maxReplications = 32;
  spec.targetMetric = "pdr";
  spec.emits = {{"campaign_csv", "rich"}, {"figures", "rich_figs"}};
  return spec;
}

/// Asserts that parsing `text` throws and the message contains every
/// fragment (so errors keep naming the offending key and expectation).
void expectParseError(const std::string& text,
                      const std::vector<std::string>& fragments) {
  try {
    parseCampaignSpec(text);
    FAIL() << "expected parse failure for: " << text;
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("campaign spec: "), std::string::npos) << what;
    for (const std::string& fragment : fragments) {
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "missing \"" << fragment << "\" in: " << what;
    }
  }
}

/// A minimal valid document with `extra` members spliced in before the
/// closing brace (pass ",\n  \"key\": value" strings).
std::string minimalSpec(const std::string& extra = "") {
  return "{\n"
         "  \"format\": \"vanet-campaign-spec\",\n"
         "  \"version\": 1,\n"
         "  \"name\": \"mini\",\n"
         "  \"scenario\": \"urban\"" +
         extra +
         "\n}\n";
}

TEST(CampaignSpecTest, ParseRenderRoundTripIsByteExact) {
  const CampaignSpec spec = richSpec();
  const std::string rendered = renderCampaignSpec(spec);
  const CampaignSpec reparsed = parseCampaignSpec(rendered);
  EXPECT_EQ(renderCampaignSpec(reparsed), rendered);
  EXPECT_EQ(campaignSpecDigest(reparsed), campaignSpecDigest(spec));
}

TEST(CampaignSpecTest, RenderOfParseIsAFixedPoint) {
  const std::string once = renderCampaignSpec(parseCampaignSpec(minimalSpec()));
  const std::string twice = renderCampaignSpec(parseCampaignSpec(once));
  EXPECT_EQ(once, twice);
}

TEST(CampaignSpecTest, MinimalSpecMaterializesDefaults) {
  const CampaignSpec spec = parseCampaignSpec(minimalSpec());
  EXPECT_EQ(spec.name, "mini");
  EXPECT_EQ(spec.scenario, "urban");
  EXPECT_EQ(spec.title, "");
  EXPECT_EQ(spec.paperRef, "");
  EXPECT_EQ(spec.seed, 2008u);
  EXPECT_EQ(spec.replications, 1);
  EXPECT_EQ(spec.base.size(), 0u);
  EXPECT_TRUE(spec.cases.empty());
  EXPECT_EQ(spec.grid.axisCount(), 0u);
  EXPECT_LE(spec.targetCi, 0.0);
  EXPECT_TRUE(spec.emits.empty());
}

TEST(CampaignSpecTest, EmitNamesDefaultToTheSpecName) {
  const CampaignSpec spec = parseCampaignSpec(
      minimalSpec(",\n  \"emit\": [{\"kind\": \"campaign_csv\"}]"));
  ASSERT_EQ(spec.emits.size(), 1u);
  EXPECT_EQ(spec.emits[0].kind, "campaign_csv");
  EXPECT_EQ(spec.emits[0].name, "mini");
}

TEST(CampaignSpecTest, AdaptiveBlockRoundTrips) {
  const CampaignSpec spec = parseCampaignSpec(minimalSpec(
      ",\n  \"adaptive\": {\"target_ci\": 0.1, \"min_replications\": 3,"
      " \"max_replications\": 12, \"metric\": \"pdr\"}"));
  EXPECT_DOUBLE_EQ(spec.targetCi, 0.1);
  EXPECT_EQ(spec.minReplications, 3);
  EXPECT_EQ(spec.maxReplications, 12);
  EXPECT_EQ(spec.targetMetric, "pdr");
  const CampaignSpec reparsed =
      parseCampaignSpec(renderCampaignSpec(spec));
  EXPECT_EQ(renderCampaignSpec(reparsed), renderCampaignSpec(spec));
}

TEST(CampaignSpecTest, AdaptiveNullMeansFixedReplications) {
  const CampaignSpec spec =
      parseCampaignSpec(minimalSpec(",\n  \"adaptive\": null"));
  EXPECT_LE(spec.targetCi, 0.0);
  const CampaignConfig config = campaignConfigFromSpec(spec);
  EXPECT_LE(config.targetRelativeCi95, 0.0);
}

TEST(CampaignSpecTest, MalformedJsonIsRejected) {
  expectParseError("{ not json", {"malformed JSON"});
  expectParseError("[1, 2]", {"expected a JSON object at the top level"});
}

TEST(CampaignSpecTest, UnknownTopLevelKeyGetsDidYouMean) {
  expectParseError(minimalSpec(",\n  \"scenarios\": \"urban\""),
                   {"unknown key \"scenarios\"", "did you mean",
                    "\"scenario\""});
}

TEST(CampaignSpecTest, DuplicateKeysAreRejected) {
  expectParseError(minimalSpec(",\n  \"name\": \"again\""),
                   {"duplicate key \"name\""});
}

TEST(CampaignSpecTest, FormatAndVersionAreValidated) {
  expectParseError("{\"version\": 1, \"name\": \"x\", \"scenario\": \"u\"}",
                   {"missing required key \"format\""});
  expectParseError(
      "{\"format\": \"other\", \"version\": 1, \"name\": \"x\","
      " \"scenario\": \"u\"}",
      {"key \"format\"", "vanet-campaign-spec"});
  expectParseError(
      "{\"format\": \"vanet-campaign-spec\", \"name\": \"x\","
      " \"scenario\": \"u\"}",
      {"missing required key \"version\""});
  expectParseError(
      "{\"format\": \"vanet-campaign-spec\", \"version\": 2,"
      " \"name\": \"x\", \"scenario\": \"u\"}",
      {"key \"version\"", "expected 1"});
  expectParseError(
      "{\"format\": \"vanet-campaign-spec\", \"version\": 1.5,"
      " \"name\": \"x\", \"scenario\": \"u\"}",
      {"key \"version\"", "an integer"});
}

TEST(CampaignSpecTest, NameAndScenarioMustBeNonEmptyStrings) {
  expectParseError(
      "{\"format\": \"vanet-campaign-spec\", \"version\": 1,"
      " \"scenario\": \"u\"}",
      {"missing required key \"name\""});
  expectParseError(
      "{\"format\": \"vanet-campaign-spec\", \"version\": 1,"
      " \"name\": \"\", \"scenario\": \"u\"}",
      {"key \"name\"", "non-empty string"});
  expectParseError(
      "{\"format\": \"vanet-campaign-spec\", \"version\": 1,"
      " \"name\": 3, \"scenario\": \"u\"}",
      {"key \"name\"", "non-empty string", "got a number"});
  expectParseError(
      "{\"format\": \"vanet-campaign-spec\", \"version\": 1,"
      " \"name\": \"x\"}",
      {"missing required key \"scenario\""});
}

TEST(CampaignSpecTest, SeedAndReplicationsAreValidated) {
  expectParseError(minimalSpec(",\n  \"seed\": \"abc\""),
                   {"key \"seed\"", "unsigned integer", "got a string"});
  expectParseError(minimalSpec(",\n  \"seed\": -1"),
                   {"key \"seed\"", "unsigned integer"});
  expectParseError(minimalSpec(",\n  \"replications\": 0"),
                   {"key \"replications\"", ">= 1"});
  expectParseError(minimalSpec(",\n  \"replications\": 2.5"),
                   {"key \"replications\"", "an integer"});
}

TEST(CampaignSpecTest, BaseParamsAreValidated) {
  expectParseError(minimalSpec(",\n  \"base\": [1]"),
                   {"key \"base\"", "an object of {param: number}"});
  expectParseError(minimalSpec(",\n  \"base\": {\"cars\": \"three\"}"),
                   {"key \"base.cars\"", "a number", "got a string"});
  expectParseError(minimalSpec(",\n  \"base\": {\"cars\": 3, \"cars\": 4}"),
                   {"key \"base\"", "duplicate parameter \"cars\""});
}

TEST(CampaignSpecTest, CasesAreValidated) {
  expectParseError(minimalSpec(",\n  \"cases\": {}"),
                   {"key \"cases\"", "an array"});
  expectParseError(minimalSpec(",\n  \"cases\": [3]"),
                   {"key \"cases[0]\"", "an object {name, overrides}"});
  expectParseError(minimalSpec(",\n  \"cases\": [{\"overrides\": {}}]"),
                   {"key \"cases[0]\"", "missing required key \"name\""});
  expectParseError(
      minimalSpec(",\n  \"cases\": [{\"name\": \"a\"}, {\"name\": \"a\"}]"),
      {"key \"cases[1].name\"", "duplicate case name \"a\""});
  expectParseError(
      minimalSpec(",\n  \"cases\": [{\"name\": \"a\", \"override\": {}}]"),
      {"unknown key \"override\"", "cases[0]", "did you mean",
       "\"overrides\""});
}

TEST(CampaignSpecTest, GridIsValidated) {
  expectParseError(minimalSpec(",\n  \"grid\": {}"),
                   {"key \"grid\"", "an array"});
  expectParseError(minimalSpec(",\n  \"grid\": [{\"values\": [1]}]"),
                   {"key \"grid[0]\"", "missing required key \"axis\""});
  expectParseError(
      minimalSpec(",\n  \"grid\": [{\"axis\": \"x\", \"values\": []}]"),
      {"key \"grid[0].values\"", "non-empty array of numbers"});
  expectParseError(
      minimalSpec(",\n  \"grid\": [{\"axis\": \"x\", \"values\": [\"y\"]}]"),
      {"key \"grid[0].values[0]\"", "a number", "got a string"});
  expectParseError(
      minimalSpec(",\n  \"grid\": [{\"axis\": \"x\", \"values\": [1]},"
                  " {\"axis\": \"x\", \"values\": [2]}]"),
      {"key \"grid[1].axis\"", "duplicate axis \"x\""});
}

TEST(CampaignSpecTest, AdaptiveIsValidated) {
  expectParseError(minimalSpec(",\n  \"adaptive\": 3"),
                   {"key \"adaptive\"", "null or an object"});
  expectParseError(minimalSpec(",\n  \"adaptive\": {}"),
                   {"key \"adaptive\"", "missing required key \"target_ci\""});
  expectParseError(minimalSpec(",\n  \"adaptive\": {\"target_ci\": 0}"),
                   {"key \"adaptive.target_ci\"", "a number > 0"});
  expectParseError(
      minimalSpec(",\n  \"adaptive\": {\"target_ci\": 0.1,"
                  " \"min_replications\": 0}"),
      {"key \"adaptive\"", "1 <= min_replications <= max_replications"});
  expectParseError(
      minimalSpec(",\n  \"adaptive\": {\"target_ci\": 0.1,"
                  " \"min_replications\": 8, \"max_replications\": 4}"),
      {"key \"adaptive\"", "1 <= min_replications <= max_replications"});
  expectParseError(
      minimalSpec(",\n  \"adaptive\": {\"target_ci\": 0.1,"
                  " \"metrics\": \"pdr\"}"),
      {"unknown key \"metrics\"", "adaptive", "did you mean", "\"metric\""});
}

TEST(CampaignSpecTest, EmitsAreValidated) {
  expectParseError(minimalSpec(",\n  \"emit\": {}"),
                   {"key \"emit\"", "an array"});
  expectParseError(minimalSpec(",\n  \"emit\": [{\"name\": \"x\"}]"),
                   {"key \"emit[0]\"", "missing required key \"kind\""});
  expectParseError(
      minimalSpec(",\n  \"emit\": [{\"kind\": \"campaign_cvs\"}]"),
      {"key \"emit[0].kind\"", "unknown emit kind \"campaign_cvs\"",
       "did you mean", "\"campaign_csv\""});
  expectParseError(
      minimalSpec(
          ",\n  \"emit\": [{\"kind\": \"campaign_csv\", \"name\": \"\"}]"),
      {"key \"emit[0].name\"", "non-empty string"});
}

TEST(CampaignSpecTest, LoadPrefixesErrorsWithThePath) {
  try {
    loadCampaignSpec("/nonexistent/spec.json");
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("/nonexistent/spec.json"),
              std::string::npos);
  }
}

TEST(CampaignSpecTest, CommittedSpecsAreFixedPointsOfTheNormalizedForm) {
  const std::vector<std::string> names = {
      "table1",
      "ablation_speed",
      "ablation_platoon_size",
      "ablation_cooperator_selection",
      "ablation_infostation_density",
      "ablation_bitrate",
      "ablation_retransmission",
      "ablation_request_batching",
      "ablation_window_gossip",
      "ablation_c2c_quality",
  };
  for (const std::string& name : names) {
    const std::string path = std::string(VANET_SPEC_DIR "/") + name + ".json";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    const CampaignSpec spec = parseCampaignSpec(text);
    // Committed specs are stored in the normalized form, so the digest
    // recorded in manifests is also the digest of the file bytes.
    EXPECT_EQ(renderCampaignSpec(spec), text) << path;
    EXPECT_EQ(spec.name, name) << path;
    EXPECT_EQ(spec.seed, 2008u) << path;
    EXPECT_FALSE(spec.title.empty()) << path;
    EXPECT_FALSE(spec.paperRef.empty()) << path;
    // Every committed spec plans against a registered scenario.
    const CampaignConfig config = campaignConfigFromSpec(spec);
    const CampaignPlan plan = buildPlan(config);
    EXPECT_GE(plan.totalJobCount(), 1u) << path;
    EXPECT_FALSE(resolvedEmits(spec).empty()) << path;
  }
}

TEST(CampaignSpecTest, SpecConfigPlansLikeAHandAssembledConfig) {
  // bench_table1's historical flag-assembled campaign, rebuilt by hand.
  CampaignConfig byHand;
  byHand.scenario = "urban";
  byHand.masterSeed = 2008;
  byHand.replications = 3;
  byHand.base.set("rounds", 10);
  byHand.base.set("cars", 3);

  const CampaignSpec spec =
      loadCampaignSpec(std::string(VANET_SPEC_DIR "/table1.json"));
  const CampaignConfig fromSpec = campaignConfigFromSpec(spec);

  const CampaignPlan planA = buildPlan(byHand);
  const CampaignPlan planB = buildPlan(fromSpec);
  ASSERT_EQ(planA.totalJobCount(), planB.totalJobCount());
  ASSERT_EQ(planA.points().size(), planB.points().size());
  for (std::size_t p = 0; p < planA.points().size(); ++p) {
    EXPECT_EQ(planA.points()[p].params.values(),
              planB.points()[p].params.values());
    EXPECT_EQ(planA.points()[p].caseName, planB.points()[p].caseName);
  }
  for (std::size_t i = 0; i < planA.shardJobCount(); ++i) {
    EXPECT_EQ(planA.shardJob(i).seed, planB.shardJob(i).seed) << i;
  }
}

TEST(CampaignSpecTest, ApplyEngineFlagsLeavesTheExperimentAlone) {
  CampaignRunFlags run;
  run.threads = 7;
  run.roundThreads = 2;
  run.shard.index = 1;
  run.shard.count = 3;
  run.streaming = true;
  run.progress = true;
  run.checkpoint = "ck.bin";
  run.resume = true;
  run.haltAfterWaves = 5;
  run.seed = 999;  // deliberately ignored: the seed belongs to the spec

  CampaignConfig config = campaignConfigFromSpec(richSpec());
  applyEngineFlags(run, config);
  EXPECT_EQ(config.threads, 7);
  EXPECT_EQ(config.roundThreads, 2);
  EXPECT_EQ(config.shard.index, 1);
  EXPECT_EQ(config.shard.count, 3);
  EXPECT_TRUE(config.streaming);
  EXPECT_TRUE(config.progress);
  EXPECT_EQ(config.checkpointPath, "ck.bin");
  EXPECT_TRUE(config.resume);
  EXPECT_EQ(config.haltAfterWaves, 5);
  EXPECT_EQ(config.masterSeed, 77u);
  EXPECT_EQ(config.scenario, "urban");
}

TEST(CampaignSpecTest, ResolvedEmitsFallBackToTheScenarioDefaults) {
  CampaignSpec spec;
  spec.name = "fallback";
  spec.scenario = "urban";
  const std::vector<SpecEmit> emits = resolvedEmits(spec);
  ASSERT_FALSE(emits.empty());
  for (const SpecEmit& emit : emits) {
    EXPECT_EQ(emit.name, "fallback");
  }
  spec.scenario = "no-such-scenario";
  EXPECT_THROW(resolvedEmits(spec), std::invalid_argument);
}

TEST(CampaignSpecTest, DigestDependsOnTheContent) {
  CampaignSpec a = richSpec();
  CampaignSpec b = richSpec();
  EXPECT_EQ(campaignSpecDigest(a), campaignSpecDigest(b));
  b.seed = a.seed + 1;
  EXPECT_NE(campaignSpecDigest(a), campaignSpecDigest(b));
}

}  // namespace
}  // namespace vanet::runner
