/// \file checkpoint_test.cpp
/// Per-wave checkpoint/resume: a campaign killed at a wave barrier and
/// restarted from its checkpoint file must emit byte-identical final
/// artefacts -- across thread counts, streaming mode, and shard merges --
/// and a checkpoint must never be mistaken for a finished shard partial.

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runner/campaign.h"
#include "runner/emit.h"
#include "runner/partial_binary.h"

namespace vanet::runner {
namespace {

/// Same synthetic scenario the adaptive tests use: "noise" = 0 reports a
/// constant metric (converges at the floor), anything else spreads
/// samples by a seed hash (runs to the cap under a tight target).
const std::string& noiseScenario() {
  static const std::string name = [] {
    ScenarioRegistry::global().add(ScenarioInfo{
        "checkpoint-test-noise",
        "constant or seed-noisy metric, no simulation",
        {{"noise", 0.0, "0 = constant metric, else noise amplitude"}},
        [](const JobContext& context) {
          JobResult result;
          const double noise = context.params.get("noise", 0.0);
          result.metrics["m"] =
              10.0 + noise * static_cast<double>(context.seed % 1000u);
          result.rounds = 1;
          return result;
        }});
    return std::string("checkpoint-test-noise");
  }();
  return name;
}

/// An adaptive campaign with a mixed grid: one point stops at the floor,
/// the noisy ones double through every wave to the cap (4 barriers).
CampaignConfig mixedAdaptive() {
  CampaignConfig config;
  config.scenario = noiseScenario();
  config.masterSeed = 2008;
  config.targetRelativeCi95 = 1e-9;
  config.minReplications = 2;
  config.maxReplications = 16;
  config.targetMetric = "m";
  config.grid.add("noise", {0.0, 1.0, 2.0});
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(CheckpointTest, HaltAfterWaveWritesResumableCheckpoint) {
  const CampaignResult reference = runCampaign(mixedAdaptive());

  CampaignConfig config = mixedAdaptive();
  config.checkpointPath = ::testing::TempDir() + "/halt1.ckpt";
  config.haltAfterWaves = 1;
  const CampaignResult halted = runCampaign(config);
  EXPECT_TRUE(halted.halted);
  EXPECT_TRUE(halted.points.empty());  // fold state lives in the file

  // The checkpoint is a binary partial carrying the resume trailer,
  // marked incomplete.
  const CampaignPartial checkpoint =
      readCampaignPartial(config.checkpointPath);
  EXPECT_TRUE(looksLikeBinaryPartial(slurp(config.checkpointPath)));
  EXPECT_TRUE(checkpoint.hasCheckpoint);
  EXPECT_FALSE(checkpoint.checkpointComplete);
  EXPECT_EQ(checkpoint.checkpointCoveredReps, 2);  // wave 0 covers min=2

  // Restarting from it finishes the campaign byte-identically.
  config.haltAfterWaves = -1;
  config.resume = true;
  const CampaignResult resumed = runCampaign(config);
  EXPECT_FALSE(resumed.halted);
  EXPECT_EQ(campaignPointsJson(resumed), campaignPointsJson(reference));
  EXPECT_EQ(campaignCsv(resumed), campaignCsv(reference));
  // The final barrier rewrote the checkpoint as complete.
  EXPECT_TRUE(readCampaignPartial(config.checkpointPath).checkpointComplete);
}

TEST(CheckpointTest, EveryInterruptionPointResumesByteIdentical) {
  const CampaignResult reference = runCampaign(mixedAdaptive());
  const std::string refJson = campaignPointsJson(reference);
  // Kill after wave 1, 2, 3 in turn: each restart must converge to the
  // same bytes no matter where the first process died.
  for (int killAfter = 1; killAfter <= 3; ++killAfter) {
    CampaignConfig config = mixedAdaptive();
    config.checkpointPath = ::testing::TempDir() + "/kill" +
                            std::to_string(killAfter) + ".ckpt";
    config.haltAfterWaves = killAfter;
    ASSERT_TRUE(runCampaign(config).halted) << killAfter;
    config.haltAfterWaves = -1;
    config.resume = true;
    const CampaignResult resumed = runCampaign(config);
    EXPECT_EQ(campaignPointsJson(resumed), refJson) << killAfter;
  }
}

TEST(CheckpointTest, ResumeIsByteIdenticalAcrossThreadsAndStreaming) {
  CampaignConfig config = mixedAdaptive();
  config.threads = 1;
  const CampaignResult reference = runCampaign(config);

  // Die single-threaded, resume on 4 streaming workers: the fold state
  // in the checkpoint is execution-order independent.
  config.checkpointPath = ::testing::TempDir() + "/threads.ckpt";
  config.haltAfterWaves = 2;
  ASSERT_TRUE(runCampaign(config).halted);
  config.haltAfterWaves = -1;
  config.resume = true;
  config.threads = 4;
  config.streaming = true;
  const CampaignResult resumed = runCampaign(config);
  EXPECT_EQ(campaignPointsJson(resumed), campaignPointsJson(reference));
  EXPECT_EQ(campaignCsv(resumed), campaignCsv(reference));
}

TEST(CheckpointTest, ShardedResumesMergeByteIdentical) {
  CampaignConfig config = mixedAdaptive();
  config.grid.add("extra", {0.0, 1.0});  // 6 points over 2 shards
  const CampaignResult reference = runCampaign(config);

  // Each shard process dies at wave 1, resumes, and writes its binary
  // partial; the merged artefacts match the uninterrupted run.
  std::vector<std::string> partialPaths;
  for (int shard = 0; shard < 2; ++shard) {
    CampaignConfig sharded = config;
    sharded.shard = Shard{shard, 2};
    sharded.checkpointPath = ::testing::TempDir() + "/shard" +
                             std::to_string(shard) + ".ckpt";
    sharded.haltAfterWaves = 1;
    ASSERT_TRUE(runCampaign(sharded).halted) << shard;
    sharded.haltAfterWaves = -1;
    sharded.resume = true;
    const CampaignResult result = runCampaign(sharded);
    const std::string path = ::testing::TempDir() + "/shard" +
                             std::to_string(shard) + ".part";
    ASSERT_TRUE(writeCampaignPartial(path, campaignPartial(result),
                                     PartialFormat::kBinary));
    partialPaths.push_back(path);
  }
  const CampaignResult merged = resultFromPartialFiles(partialPaths);
  EXPECT_EQ(campaignPointsJson(merged), campaignPointsJson(reference));
  EXPECT_EQ(campaignCsv(merged), campaignCsv(reference));
}

TEST(CheckpointTest, ResumeFromCompleteCheckpointReplaysNothing) {
  CampaignConfig config = mixedAdaptive();
  config.checkpointPath = ::testing::TempDir() + "/complete.ckpt";
  const CampaignResult reference = runCampaign(config);
  ASSERT_TRUE(readCampaignPartial(config.checkpointPath).checkpointComplete);
  // Resuming a finished campaign runs zero further jobs and reproduces
  // the same points.
  config.resume = true;
  const CampaignResult resumed = runCampaign(config);
  EXPECT_EQ(resumed.waves, 0);
  EXPECT_EQ(campaignPointsJson(resumed), campaignPointsJson(reference));
}

TEST(CheckpointTest, ResumeValidatesTheCheckpoint) {
  CampaignConfig config = mixedAdaptive();
  config.checkpointPath = ::testing::TempDir() + "/validate.ckpt";
  config.haltAfterWaves = 1;
  ASSERT_TRUE(runCampaign(config).halted);
  config.haltAfterWaves = -1;
  config.resume = true;

  // A checkpoint from a different campaign must be refused field by
  // field, not silently folded into the wrong run.
  CampaignConfig foreign = config;
  foreign.masterSeed = 9999;
  try {
    runCampaign(foreign);
    FAIL() << "foreign checkpoint must not resume";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("checkpoint describes a different campaign"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(config.checkpointPath), std::string::npos) << what;
  }

  // --resume without a checkpoint path is a usage error.
  CampaignConfig pathless = config;
  pathless.checkpointPath.clear();
  EXPECT_THROW(runCampaign(pathless), std::invalid_argument);

  // A missing checkpoint file fails loudly instead of starting over.
  CampaignConfig missing = config;
  missing.checkpointPath = ::testing::TempDir() + "/no_such.ckpt";
  EXPECT_THROW(runCampaign(missing), std::runtime_error);

  // A finished shard partial is not a checkpoint.
  CampaignConfig donor = mixedAdaptive();
  const std::string partialPath = ::testing::TempDir() + "/finished.part";
  ASSERT_TRUE(writeCampaignPartial(partialPath,
                                   campaignPartial(runCampaign(donor)),
                                   PartialFormat::kBinary));
  CampaignConfig wrongKind = config;
  wrongKind.checkpointPath = partialPath;
  try {
    runCampaign(wrongKind);
    FAIL() << "a shard partial must not pass as a checkpoint";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("not a checkpoint"),
              std::string::npos)
        << error.what();
  }
}

TEST(CheckpointTest, UnfinishedCheckpointIsNotAMergeableShard) {
  CampaignConfig config = mixedAdaptive();
  config.checkpointPath = ::testing::TempDir() + "/notashard.ckpt";
  config.haltAfterWaves = 1;
  ASSERT_TRUE(runCampaign(config).halted);
  const CampaignPartial checkpoint =
      readCampaignPartial(config.checkpointPath);
  try {
    mergeCampaignPartials({checkpoint});
    FAIL() << "an unfinished checkpoint must not merge as a shard";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(
        std::string(error.what()).find("unfinished wave checkpoint"),
        std::string::npos)
        << error.what();
  }
}

TEST(CheckpointTest, CheckpointRoundTripsThroughTheBinaryFormat) {
  // The checkpoint trailer itself survives serialize -> parse ->
  // serialize bit for bit (it rides the v3 CHECKPOINT section).
  CampaignConfig config = mixedAdaptive();
  config.checkpointPath = ::testing::TempDir() + "/roundtrip.ckpt";
  config.haltAfterWaves = 2;
  ASSERT_TRUE(runCampaign(config).halted);
  const std::string bytes = slurp(config.checkpointPath);
  const CampaignPartial parsed = parseCampaignPartialBinary(bytes);
  EXPECT_TRUE(parsed.hasCheckpoint);
  EXPECT_EQ(parsed.checkpointCoveredReps, 4);  // waves 0+1 cover 2, 4
  EXPECT_EQ(campaignPartialBinary(parsed), bytes);
}

}  // namespace
}  // namespace vanet::runner
