#include "runner/accumulate.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runner/campaign.h"
#include "runner/emit.h"

namespace vanet::runner {
namespace {

/// A small urban campaign that exercises every serialized payload:
/// Table 1 rows, per-flow figures, protocol totals and scalar metrics.
CampaignConfig urbanCampaign() {
  CampaignConfig config;
  config.scenario = "urban";
  config.masterSeed = 2008;
  config.replications = 2;
  config.threads = 2;
  config.base.set("rounds", 2);
  config.base.set("cars", 2);
  config.grid.add("speed_kmh", {20.0, 30.0}).add("coop", {0.0, 1.0});
  return config;
}

std::string allFigureCsvs(const CampaignResult& result) {
  std::string out;
  for (const GridPointSummary& point : result.points) {
    for (const auto& [flow, figure] : point.figures) {
      out += "# p" + std::to_string(point.gridIndex) + " f" +
             std::to_string(flow) + "\n";
      out += figureSeriesCsv(figure);
    }
  }
  return out;
}

TEST(AccumulateTest, PartialJsonRoundTripIsByteStable) {
  const CampaignResult result = runCampaign(urbanCampaign());
  const CampaignPartial partial = campaignPartial(result);
  const std::string text = campaignPartialJson(partial);
  const CampaignPartial parsed = parseCampaignPartial(text);
  // serialize -> parse -> serialize reproduces the bytes exactly: the
  // Welford merge-states survive the round trip bit for bit.
  EXPECT_EQ(campaignPartialJson(parsed), text);
  EXPECT_EQ(parsed.scenario, "urban");
  EXPECT_EQ(parsed.masterSeed, 2008u);
  EXPECT_EQ(parsed.replications, 2);
  EXPECT_EQ(parsed.totalPoints, 4u);
  EXPECT_EQ(parsed.totalJobs, 8u);
  ASSERT_EQ(parsed.points.size(), 4u);
  // The emitted artefacts of the round-tripped result match too.
  CampaignResult back = resultFromPartials({parsed});
  EXPECT_EQ(campaignPointsJson(back), campaignPointsJson(result));
  EXPECT_EQ(campaignCsv(back), campaignCsv(result));
  EXPECT_EQ(allFigureCsvs(back), allFigureCsvs(result));
}

TEST(AccumulateTest, TwoShardsMergeBitIdenticalToSingleProcess) {
  CampaignConfig config = urbanCampaign();
  config.threads = 1;
  const CampaignResult reference = runCampaign(config);

  config.threads = 2;
  std::vector<CampaignPartial> partials;
  for (int shard = 0; shard < 2; ++shard) {
    config.shard = Shard{shard, 2};
    const CampaignResult result = runCampaign(config);
    EXPECT_EQ(result.points.size(), 2u);  // 4 points round-robin over 2
    EXPECT_EQ(result.jobCount, 4u);
    EXPECT_EQ(result.totalJobs, 8u);
    // File round trip, exactly as two processes would exchange them.
    partials.push_back(
        parseCampaignPartial(campaignPartialJson(campaignPartial(result))));
  }
  const CampaignResult merged = resultFromPartials(std::move(partials));
  EXPECT_EQ(merged.points.size(), 4u);
  EXPECT_EQ(campaignPointsJson(merged), campaignPointsJson(reference));
  EXPECT_EQ(campaignCsv(merged), campaignCsv(reference));
  EXPECT_EQ(allFigureCsvs(merged), allFigureCsvs(reference));
}

TEST(AccumulateTest, ShardOrderGivenToMergeDoesNotMatter) {
  CampaignConfig config = urbanCampaign();
  std::vector<CampaignPartial> partials;
  for (int shard = 1; shard >= 0; --shard) {  // reversed on purpose
    config.shard = Shard{shard, 2};
    partials.push_back(campaignPartial(runCampaign(config)));
  }
  const CampaignResult merged = resultFromPartials(std::move(partials));
  config.shard = Shard{};
  EXPECT_EQ(campaignPointsJson(merged),
            campaignPointsJson(runCampaign(config)));
}

TEST(AccumulateTest, EmptyShardsRoundTripAndMerge) {
  // More shards than points: the surplus shard writes an empty (but
  // valid) partial, and the merge still reassembles the full grid.
  CampaignConfig config = urbanCampaign();
  std::vector<CampaignPartial> partials;
  for (int shard = 0; shard < 6; ++shard) {
    config.shard = Shard{shard, 6};
    partials.push_back(
        parseCampaignPartial(campaignPartialJson(campaignPartial(
            runCampaign(config)))));
  }
  EXPECT_TRUE(partials[4].points.empty());
  const CampaignResult merged = resultFromPartials(std::move(partials));
  config.shard = Shard{};
  config.threads = 1;
  EXPECT_EQ(campaignPointsJson(merged),
            campaignPointsJson(runCampaign(config)));
}

TEST(AccumulateTest, MergeValidatesShardSets) {
  CampaignConfig config = urbanCampaign();
  config.shard = Shard{0, 2};
  const CampaignPartial shard0 = campaignPartial(runCampaign(config));
  config.shard = Shard{1, 2};
  const CampaignPartial shard1 = campaignPartial(runCampaign(config));

  EXPECT_THROW(mergeCampaignPartials({}), std::runtime_error);
  // Missing shard 1.
  EXPECT_THROW(mergeCampaignPartials({shard0}), std::runtime_error);
  // Duplicate shard 0.
  EXPECT_THROW(mergeCampaignPartials({shard0, shard0}), std::runtime_error);
  // Shards from different campaigns.
  config.masterSeed = 2009;
  const CampaignPartial foreign = campaignPartial(runCampaign(config));
  EXPECT_THROW(mergeCampaignPartials({shard0, foreign}), std::runtime_error);
  // The healthy set still merges.
  EXPECT_EQ(mergeCampaignPartials({shard0, shard1}).size(), 4u);
}

TEST(AccumulateTest, MergeErrorsNameShardSpecAndSourceFile) {
  CampaignConfig config = urbanCampaign();
  config.shard = Shard{0, 2};
  const CampaignResult result = runCampaign(config);
  const std::string path = ::testing::TempDir() + "/culprit_shard0.json";
  ASSERT_TRUE(writeCampaignPartial(path, campaignPartial(result)));

  // A partial read back from disk remembers its file; merge failures
  // must point the operator at that file, not just an index.
  const CampaignPartial fromFile = readCampaignPartial(path);
  EXPECT_EQ(fromFile.sourcePath, path);
  try {
    mergeCampaignPartials({fromFile, fromFile});
    FAIL() << "duplicate shard set must not merge";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("shard 0/2"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }

  // In-memory partials (no file) degrade to the bare shard spec.
  const CampaignPartial inMemory = campaignPartial(result);
  try {
    mergeCampaignPartials({inMemory});
    FAIL() << "incomplete shard set must not merge";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("shard 0/2"), std::string::npos) << what;
    EXPECT_EQ(what.find(" from '"), std::string::npos) << what;
  }
}

TEST(AccumulateTest, ReadErrorsNameTheFile) {
  const std::string path = ::testing::TempDir() + "/broken_partial.json";
  std::ofstream(path) << "{\"format\":\"other\",\"version\":1}";
  try {
    readCampaignPartial(path);
    FAIL() << "foreign document must not parse";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
        << error.what();
  }
}

TEST(AccumulateTest, BinaryReadErrorsNameFileAndByteOffset) {
  // The binary reader must match the JSON reader's error contract --
  // the failing file is always named -- and add the byte offset of the
  // damage, which text formats cannot give.
  CampaignConfig config = urbanCampaign();
  config.shard = Shard{0, 2};
  const std::string good = ::testing::TempDir() + "/bin_ok.part";
  ASSERT_TRUE(writeCampaignPartial(good,
                                   campaignPartial(runCampaign(config)),
                                   PartialFormat::kBinary));
  std::string bytes;
  {
    std::ifstream in(good, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  const std::string truncated = ::testing::TempDir() + "/bin_cut.part";
  std::ofstream(truncated, std::ios::binary)
      << bytes.substr(0, bytes.size() / 2);
  try {
    readCampaignPartial(truncated);
    FAIL() << "truncated binary partial must not parse";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(truncated), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
  }
}

TEST(AccumulateTest, MergeFilesReportsTheUnreadableFile) {
  CampaignConfig config = urbanCampaign();
  config.shard = Shard{0, 2};
  const std::string good = ::testing::TempDir() + "/merge_ok.part";
  ASSERT_TRUE(writeCampaignPartial(good,
                                   campaignPartial(runCampaign(config)),
                                   PartialFormat::kBinary));
  const std::string missing = ::testing::TempDir() + "/merge_gone.part";
  try {
    mergeCampaignPartialFiles({good, missing});
    FAIL() << "missing shard file must not merge";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(missing), std::string::npos)
        << error.what();
  }
}

TEST(AccumulateTest, ParseRejectsWrongFormatAndVersion) {
  EXPECT_THROW(parseCampaignPartial("{}"), std::runtime_error);
  EXPECT_THROW(parseCampaignPartial("not json at all {"),
               std::runtime_error);
  EXPECT_THROW(
      parseCampaignPartial(
          R"({"format":"vanet-campaign-partial","version":999})"),
      std::runtime_error);
  EXPECT_THROW(parseCampaignPartial(R"({"format":"other","version":1})"),
               std::runtime_error);
}

TEST(AccumulateTest, PartialFileWriteReadRoundTrip) {
  CampaignConfig config = urbanCampaign();
  config.shard = Shard{0, 2};
  const CampaignResult result = runCampaign(config);
  const std::string path = ::testing::TempDir() + "/shard0.json";
  ASSERT_TRUE(writeCampaignPartial(path, campaignPartial(result)));
  const CampaignPartial back = readCampaignPartial(path);
  EXPECT_EQ(campaignPartialJson(back),
            campaignPartialJson(campaignPartial(result)));
  EXPECT_THROW(readCampaignPartial(path + ".missing"), std::runtime_error);
}

TEST(AccumulateTest, Int64RoundsSurviveSerialization) {
  // A summary with > 2^31 simulated rounds round-trips unclipped.
  GridPointSummary point;
  point.gridIndex = 0;
  point.replications = 1;
  point.rounds = 3000000000LL;
  CampaignPartial partial;
  partial.scenario = "synthetic";
  partial.shard = Shard{0, 1};
  partial.replications = 1;
  partial.totalPoints = 1;
  partial.totalJobs = 1;
  partial.points.push_back(std::move(point));
  const CampaignPartial back =
      parseCampaignPartial(campaignPartialJson(partial));
  ASSERT_EQ(back.points.size(), 1u);
  EXPECT_EQ(back.points[0].rounds, 3000000000LL);
}

}  // namespace
}  // namespace vanet::runner
