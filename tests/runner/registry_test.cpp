#include "runner/registry.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "runner/campaign.h"

namespace vanet::runner {
namespace {

TEST(ScenarioRegistryTest, BuiltinScenariosAreRegistered) {
  ScenarioRegistry& registry = ScenarioRegistry::global();
  for (const char* name : {"urban", "highway", "highway_file"}) {
    const ScenarioInfo* info = registry.find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->name, name);
    EXPECT_FALSE(info->description.empty());
    EXPECT_FALSE(info->params.empty());
    EXPECT_NE(info->run, nullptr);
  }
}

TEST(ScenarioRegistryTest, UnknownScenarioIsNull) {
  EXPECT_EQ(ScenarioRegistry::global().find("no-such-scenario"), nullptr);
  EXPECT_EQ(ScenarioRegistry::global().find(""), nullptr);
}

TEST(ScenarioRegistryTest, NamesAreSortedAndContainBuiltins) {
  const std::vector<std::string> names = ScenarioRegistry::global().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_NE(std::find(names.begin(), names.end(), "urban"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "highway"), names.end());
}

TEST(ScenarioRegistryTest, DefaultsComeFromParamSpecs) {
  const ParamSet defaults = ScenarioRegistry::global().defaults("urban");
  EXPECT_EQ(defaults.getInt("rounds", -1), 30);
  EXPECT_EQ(defaults.getInt("cars", -1), 3);
  EXPECT_TRUE(defaults.getBool("coop", false));
  // Unknown scenario -> a throw naming the registered scenarios.
  try {
    ScenarioRegistry::global().defaults("nope");
    FAIL() << "defaults(\"nope\") should throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("nope"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("urban"), std::string::npos);
  }
}

TEST(ScenarioRegistryTest, EveryBuiltinParamHasHelpText) {
  for (const std::string& name : ScenarioRegistry::global().names()) {
    const ScenarioInfo* info = ScenarioRegistry::global().find(name);
    for (const ParamSpec& spec : info->params) {
      EXPECT_FALSE(spec.help.empty()) << name << "." << spec.name;
    }
  }
}

TEST(ScenarioRegistryTest, UserScenarioRegistersAndRuns) {
  const std::string name = "registry-test-dummy";
  if (ScenarioRegistry::global().find(name) == nullptr) {
    ScenarioRegistry::global().add(ScenarioInfo{
        name,
        "test scenario",
        {{"x", 2.0, "test parameter"}},
        [](const JobContext& job) {
          JobResult result;
          result.metrics["x_times_two"] = job.params.get("x", 0.0) * 2.0;
          result.rounds = 1;
          return result;
        }});
  }
  const ScenarioInfo* info = ScenarioRegistry::global().find(name);
  ASSERT_NE(info, nullptr);
  JobContext context;
  context.params = ScenarioRegistry::global().defaults(name);
  const JobResult result = info->run(context);
  EXPECT_DOUBLE_EQ(result.metrics.at("x_times_two"), 4.0);
}

TEST(ScenarioRegistryTest, UnknownScenarioCampaignThrows) {
  CampaignConfig config;
  config.scenario = "no-such-scenario";
  EXPECT_THROW(runCampaign(config), std::invalid_argument);
}

TEST(ScenarioRegistryTest, InvalidReplicationsThrow) {
  CampaignConfig config;
  config.scenario = "urban";
  config.replications = 0;
  EXPECT_THROW(runCampaign(config), std::invalid_argument);
}

}  // namespace
}  // namespace vanet::runner
