#include "runner/plan.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "util/rng.h"

namespace vanet::runner {
namespace {

CampaignConfig gridCampaign() {
  CampaignConfig config;
  config.scenario = "urban";
  config.masterSeed = 2008;
  config.replications = 3;
  config.base.set("rounds", 1);
  config.grid.add("speed_kmh", {20.0, 30.0}).add("coop", {0.0, 1.0});
  return config;
}

TEST(PlanTest, ExpandsGridAndLayout) {
  const CampaignPlan plan = buildPlan(gridCampaign());
  ASSERT_EQ(plan.points().size(), 4u);
  EXPECT_EQ(plan.totalJobCount(), 12u);
  EXPECT_EQ(plan.shardJobCount(), 12u);  // default shard runs everything
  // speed varies slowest, coop fastest; defaults resolve into params.
  EXPECT_DOUBLE_EQ(plan.points()[0].params.get("speed_kmh", 0), 20.0);
  EXPECT_DOUBLE_EQ(plan.points()[1].params.get("coop", -1), 1.0);
  EXPECT_DOUBLE_EQ(plan.points()[2].params.get("speed_kmh", 0), 30.0);
  EXPECT_TRUE(plan.points()[0].params.has("gossip"));
  for (std::size_t p = 0; p < plan.points().size(); ++p) {
    EXPECT_EQ(plan.points()[p].gridIndex, p);
  }
}

TEST(PlanTest, RoundThreadsCarryIntoThePlan) {
  CampaignConfig config = gridCampaign();
  EXPECT_EQ(buildPlan(config).roundThreads(), 1);  // serial by default
  config.roundThreads = 4;
  EXPECT_EQ(buildPlan(config).roundThreads(), 4);
}

TEST(PlanTest, JobsAreGridMajorWithDerivedSeeds) {
  const CampaignPlan plan = buildPlan(gridCampaign());
  for (std::size_t i = 0; i < plan.shardJobCount(); ++i) {
    const JobSpec job = plan.shardJob(i);
    EXPECT_EQ(job.globalIndex, i);
    EXPECT_EQ(job.pointIndex, i / 3);
    EXPECT_EQ(job.replication, static_cast<int>(i % 3));
    EXPECT_EQ(job.seed, Rng::deriveStreamSeed(2008, i));
  }
}

TEST(PlanTest, ShardsPartitionPointsRoundRobin) {
  CampaignConfig config = gridCampaign();
  std::set<std::size_t> covered;
  std::set<std::uint64_t> globals;
  for (int shard = 0; shard < 3; ++shard) {
    config.shard = Shard{shard, 3};
    const CampaignPlan plan = buildPlan(config);
    for (const std::size_t p : plan.shardPointIndices()) {
      EXPECT_EQ(p % 3u, static_cast<std::size_t>(shard));
      EXPECT_TRUE(covered.insert(p).second) << "point in two shards";
    }
    // Shard jobs keep their full-campaign indices (and therefore their
    // unsharded RNG streams).
    for (std::size_t i = 0; i < plan.shardJobCount(); ++i) {
      const JobSpec job = plan.shardJob(i);
      EXPECT_EQ(job.globalIndex, job.pointIndex * 3 +
                                     static_cast<std::size_t>(job.replication));
      EXPECT_EQ(job.seed, Rng::deriveStreamSeed(2008, job.globalIndex));
      EXPECT_TRUE(globals.insert(job.globalIndex).second);
    }
  }
  EXPECT_EQ(covered.size(), 4u);   // every point in exactly one shard
  EXPECT_EQ(globals.size(), 12u);  // every job in exactly one shard
}

TEST(PlanTest, MoreShardsThanPointsLeavesSomeEmpty) {
  CampaignConfig config = gridCampaign();
  config.shard = Shard{5, 6};
  const CampaignPlan plan = buildPlan(config);
  EXPECT_TRUE(plan.shardPointIndices().empty());
  EXPECT_EQ(plan.shardJobCount(), 0u);
  EXPECT_EQ(plan.totalJobCount(), 12u);
}

TEST(PlanTest, CasesExpandCaseMajor) {
  CampaignConfig config;
  config.scenario = "urban";
  config.replications = 1;
  config.base.set("rounds", 1);
  config.cases = {{"plain", {{"coop", 0.0}}}, {"c-arq", {{"coop", 1.0}}}};
  config.grid.add("speed_kmh", {20.0, 30.0});
  const CampaignPlan plan = buildPlan(config);
  ASSERT_EQ(plan.points().size(), 4u);
  EXPECT_EQ(plan.points()[0].caseName, "plain");
  EXPECT_EQ(plan.points()[2].caseName, "c-arq");
  EXPECT_DOUBLE_EQ(plan.points()[2].params.get("coop", -1), 1.0);
  EXPECT_DOUBLE_EQ(plan.points()[3].params.get("speed_kmh", 0), 30.0);
}

TEST(PlanTest, ValidatesInputs) {
  CampaignConfig config = gridCampaign();
  config.scenario = "no-such-scenario";
  EXPECT_THROW(buildPlan(config), std::invalid_argument);

  config = gridCampaign();
  config.replications = 0;
  EXPECT_THROW(buildPlan(config), std::invalid_argument);

  config = gridCampaign();
  config.shard = Shard{2, 2};  // index out of range
  EXPECT_THROW(buildPlan(config), std::invalid_argument);
  config.shard = Shard{0, 0};
  EXPECT_THROW(buildPlan(config), std::invalid_argument);
  config.shard = Shard{-1, 2};
  EXPECT_THROW(buildPlan(config), std::invalid_argument);
}

}  // namespace
}  // namespace vanet::runner
