#include "runner/partial_binary.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runner/campaign.h"
#include "runner/emit.h"
#include "util/binio.h"

namespace vanet::runner {
namespace {

CampaignConfig urbanCampaign() {
  CampaignConfig config;
  config.scenario = "urban";
  config.masterSeed = 2008;
  config.replications = 2;
  config.threads = 2;
  config.base.set("rounds", 2);
  config.base.set("cars", 2);
  config.grid.add("speed_kmh", {20.0, 30.0}).add("coop", {0.0, 1.0});
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Recomputes the trailing FNV-1a checksum after the test mutated the
/// payload, so corruption tests hit the *parser* error they target
/// instead of tripping the checksum first.
std::string withFixedChecksum(std::string bytes) {
  const std::uint64_t sum = util::fnv1a64(bytes.data(), bytes.size() - 8);
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  }
  return bytes;
}

/// Reads the section table of a v3 stream and returns the payload offset
/// of the section with `wantId` (0 when absent).
std::size_t sectionOffset(const std::string& bytes, std::uint32_t wantId) {
  util::BinReader in(bytes);
  for (int i = 0; i < 8; ++i) in.u8("magic");
  in.u32("version");
  const std::uint32_t sections = in.u32("section count");
  for (std::uint32_t s = 0; s < sections; ++s) {
    const std::uint32_t id = in.u32("id");
    in.u32("flags");
    const std::uint64_t offset = in.u64("offset");
    in.u64("length");
    if (id == wantId) return static_cast<std::size_t>(offset);
  }
  return 0;
}

/// A minimal hand-built partial whose point-record byte layout is fully
/// known to the test (empty case name, no params/figures/metrics).
CampaignPartial syntheticPartial() {
  GridPointSummary point;
  point.gridIndex = 0;
  point.replications = 1;
  point.rounds = 5;
  CampaignPartial partial;
  partial.scenario = "s";
  partial.shard = Shard{0, 1};
  partial.replications = 1;
  partial.totalPoints = 1;
  partial.totalJobs = 1;
  partial.points.push_back(std::move(point));
  return partial;
}

TEST(PartialBinaryTest, RoundTripIsByteStableAndLossless) {
  const CampaignResult result = runCampaign(urbanCampaign());
  const CampaignPartial partial = campaignPartial(result);
  const std::string bytes = campaignPartialBinary(partial);
  EXPECT_TRUE(looksLikeBinaryPartial(bytes));
  const CampaignPartial parsed = parseCampaignPartialBinary(bytes);
  // serialize -> parse -> serialize reproduces the bytes exactly; the
  // JSON rendering of both partials agrees field for field, so the
  // binary format loses nothing the text format carries.
  EXPECT_EQ(campaignPartialBinary(parsed), bytes);
  EXPECT_EQ(campaignPartialJson(parsed), campaignPartialJson(partial));
  // The reassembled result emits the same artefacts.
  CampaignResult back = resultFromPartials({parsed});
  EXPECT_EQ(campaignPointsJson(back), campaignPointsJson(result));
  EXPECT_EQ(campaignCsv(back), campaignCsv(result));
}

TEST(PartialBinaryTest, FileRoundTripAutoDetectsFormat) {
  CampaignConfig config = urbanCampaign();
  config.shard = Shard{0, 2};
  const CampaignResult result = runCampaign(config);
  const std::string path = ::testing::TempDir() + "/shard0.bin";
  ASSERT_TRUE(writeCampaignPartial(path, campaignPartial(result),
                                   PartialFormat::kBinary));
  EXPECT_TRUE(looksLikeBinaryPartial(slurp(path)));
  // readCampaignPartial never needs to be told the format: the magic
  // decides, and sourcePath still points back at the file.
  const CampaignPartial back = readCampaignPartial(path);
  EXPECT_EQ(back.sourcePath, path);
  EXPECT_EQ(campaignPartialJson(back),
            campaignPartialJson(campaignPartial(result)));
}

TEST(PartialBinaryTest, AutoFormatPicksBinaryForShardedRuns) {
  CampaignConfig config = urbanCampaign();
  config.shard = Shard{1, 2};
  const CampaignResult result = runCampaign(config);
  const std::string sharded = ::testing::TempDir() + "/auto_shard.part";
  const std::string whole = ::testing::TempDir() + "/auto_whole.part";
  ASSERT_TRUE(writeCampaignPartial(sharded, campaignPartial(result),
                                   PartialFormat::kAuto));
  EXPECT_TRUE(looksLikeBinaryPartial(slurp(sharded)));
  config.shard = Shard{};
  ASSERT_TRUE(writeCampaignPartial(whole,
                                   campaignPartial(runCampaign(config)),
                                   PartialFormat::kAuto));
  EXPECT_FALSE(looksLikeBinaryPartial(slurp(whole)));  // JSON for 1/1
}

TEST(PartialBinaryTest, StreamingReaderMatchesInMemoryParse) {
  const CampaignResult result = runCampaign(urbanCampaign());
  const CampaignPartial partial = campaignPartial(result);
  const std::string path = ::testing::TempDir() + "/stream.bin";
  dump(path, campaignPartialBinary(partial));

  PartialBinaryFileReader reader(path);
  EXPECT_EQ(reader.header().scenario, partial.scenario);
  EXPECT_EQ(reader.header().masterSeed, partial.masterSeed);
  EXPECT_EQ(reader.header().sourcePath, path);
  EXPECT_EQ(reader.remainingPoints(), partial.points.size());

  CampaignPartial streamed = reader.header();
  GridPointSummary point;
  while (reader.nextPoint(point)) streamed.points.push_back(std::move(point));
  EXPECT_EQ(reader.remainingPoints(), 0u);
  streamed.sourcePath.clear();
  EXPECT_EQ(campaignPartialJson(streamed), campaignPartialJson(partial));
}

TEST(PartialBinaryTest, ZeroPointShardStreamsCleanly) {
  CampaignConfig config = urbanCampaign();
  config.shard = Shard{5, 6};  // more shards than grid points
  const CampaignPartial partial = campaignPartial(runCampaign(config));
  ASSERT_TRUE(partial.points.empty());
  const std::string bytes = campaignPartialBinary(partial);
  EXPECT_EQ(campaignPartialBinary(parseCampaignPartialBinary(bytes)), bytes);
  const std::string path = ::testing::TempDir() + "/empty.bin";
  dump(path, bytes);
  PartialBinaryFileReader reader(path);
  EXPECT_EQ(reader.remainingPoints(), 0u);
  GridPointSummary unused;
  EXPECT_FALSE(reader.nextPoint(unused));
}

TEST(PartialBinaryTest, MixedFormatShardsMergeByteIdentical) {
  CampaignConfig config = urbanCampaign();
  config.threads = 1;
  const CampaignResult reference = runCampaign(config);

  const std::string jsonPath = ::testing::TempDir() + "/mixed0.json";
  const std::string binPath = ::testing::TempDir() + "/mixed1.bin";
  config.threads = 2;
  config.shard = Shard{0, 2};
  ASSERT_TRUE(writeCampaignPartial(jsonPath,
                                   campaignPartial(runCampaign(config)),
                                   PartialFormat::kJson));
  config.shard = Shard{1, 2};
  ASSERT_TRUE(writeCampaignPartial(binPath,
                                   campaignPartial(runCampaign(config)),
                                   PartialFormat::kBinary));

  // One JSON shard, one binary shard, given in reverse order: the merge
  // must still be byte-identical to the single-process artefacts.
  const CampaignResult merged =
      resultFromPartialFiles({binPath, jsonPath});
  EXPECT_EQ(campaignPointsJson(merged), campaignPointsJson(reference));
  EXPECT_EQ(campaignCsv(merged), campaignCsv(reference));
}

TEST(PartialBinaryTest, RejectsBadMagicAndVersion) {
  EXPECT_FALSE(looksLikeBinaryPartial("VNETPARX"));
  EXPECT_FALSE(looksLikeBinaryPartial("VNE"));  // shorter than the magic
  try {
    parseCampaignPartialBinary("VNETPARX________");
    FAIL() << "bad magic must not parse";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "not a binary campaign partial (bad magic)");
  }
  std::string bytes = campaignPartialBinary(syntheticPartial());
  bytes[8] = 9;  // version u32 lives right after the magic
  try {
    parseCampaignPartialBinary(withFixedChecksum(bytes));
    FAIL() << "future version must not parse";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(),
                 "unsupported binary campaign partial version 9 "
                 "(supported: 3)");
  }
}

TEST(PartialBinaryTest, ChecksumMismatchNamesStoredAndComputed) {
  std::string bytes = campaignPartialBinary(syntheticPartial());
  const std::size_t points = sectionOffset(bytes, 2);
  ASSERT_GT(points, 0u);
  // Flip one bit inside the rounds i64 of the first record (framing u64
  // + gridIndex u64 + empty case name u32 + replications i32 deep), so
  // the stream still *decodes* and only the checksum notices.
  bytes[points + 8 + 16 + 4] ^= 0x01;
  try {
    parseCampaignPartialBinary(bytes);
    FAIL() << "bit rot must not parse";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("checksum mismatch"),
              std::string::npos)
        << error.what();
  }
  // The streaming reader catches the same corruption at end of stream.
  const std::string path = ::testing::TempDir() + "/corrupt.bin";
  dump(path, bytes);
  try {
    PartialBinaryFileReader reader(path);
    GridPointSummary point;
    while (reader.nextPoint(point)) {
    }
    FAIL() << "bit rot must not stream";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
  }
}

TEST(PartialBinaryTest, TruncationNamesByteOffset) {
  const std::string bytes = campaignPartialBinary(syntheticPartial());
  // In memory: the prologue itself is cut short.
  try {
    parseCampaignPartialBinary(bytes.substr(0, 10));
    FAIL() << "truncated prologue must not parse";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("byte offset"),
              std::string::npos)
        << error.what();
  }
  // On disk: the file ends inside the points section; the streaming
  // reader reports the path and the byte offset where data ran out.
  const std::string path = ::testing::TempDir() + "/truncated.bin";
  const std::size_t cut = sectionOffset(bytes, 2) + 4;
  dump(path, bytes.substr(0, cut));
  try {
    PartialBinaryFileReader reader(path);
    GridPointSummary point;
    while (reader.nextPoint(point)) {
    }
    FAIL() << "truncated file must not stream";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("truncated at byte offset"), std::string::npos)
        << what;
  }
}

TEST(PartialBinaryTest, CorruptRecordReportsRecordIndexAndOffset) {
  std::string bytes = campaignPartialBinary(syntheticPartial());
  const std::size_t points = sectionOffset(bytes, 2);
  ASSERT_GT(points, 0u);
  // Record layout with an empty case name: gridIndex u64 (8) + case-name
  // length u32 (4) + replications i32 (4) + rounds i64 (8) + ci95 f64 (8)
  // puts the param-count u32 32 bytes into the record; the record itself
  // starts after the u64 length framing.
  const std::size_t paramCount = points + 8 + 32;
  ASSERT_LT(paramCount + 4, bytes.size());
  bytes[paramCount] = static_cast<char>(0xff);  // claim 255 params
  bytes = withFixedChecksum(bytes);
  try {
    parseCampaignPartialBinary(bytes);
    FAIL() << "overlong param table must not parse";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("point record 1 of 1"), std::string::npos) << what;
    EXPECT_NE(what.find("truncated at byte offset"), std::string::npos)
        << what;
  }
  const std::string path = ::testing::TempDir() + "/badrecord.bin";
  dump(path, bytes);
  try {
    PartialBinaryFileReader reader(path);
    GridPointSummary point;
    while (reader.nextPoint(point)) {
    }
    FAIL() << "overlong param table must not stream";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("point record"), std::string::npos) << what;
  }
}

TEST(PartialBinaryTest, TrailingGarbageAfterChecksumFails) {
  const std::string bytes = campaignPartialBinary(syntheticPartial());
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  dump(path, bytes + "extra");
  try {
    PartialBinaryFileReader reader(path);
    GridPointSummary point;
    while (reader.nextPoint(point)) {
    }
    FAIL() << "appended garbage must not stream";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what())
                  .find("trailing garbage after the checksum"),
              std::string::npos)
        << error.what();
  }
}

TEST(PartialBinaryTest, MergeErrorsKeepShardContextForBinaryFiles) {
  CampaignConfig config = urbanCampaign();
  config.shard = Shard{0, 2};
  const std::string path = ::testing::TempDir() + "/ctx_shard0.bin";
  ASSERT_TRUE(writeCampaignPartial(path,
                                   campaignPartial(runCampaign(config)),
                                   PartialFormat::kBinary));
  // Binary shard files keep the "shard i/N from 'file'" merge context
  // the JSON path established.
  try {
    resultFromPartialFiles({path, path});
    FAIL() << "duplicate shard set must not merge";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("shard 0/2"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace vanet::runner
