/// \file plugin_scenario_test.cpp
/// Out-of-library scenario registration: a translation unit the vanet
/// library knows nothing about registers a scenario through
/// ScenarioRegistrar (static-init, exactly as a plug-in would), and a
/// campaign spec naming it parses, plans, runs, and emits artefacts
/// end to end.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runner/campaign.h"
#include "runner/registry.h"
#include "runner/spec.h"

namespace vanet::runner {
namespace {

/// The plug-in: registered at static-initialization time, before main,
/// with its own default target metric and emit list.
const ScenarioRegistrar kPluginScenario{{
    "plugin-echo",
    "test plug-in: echoes its parameters as metrics",
    {{"gain", 2.0, "multiplier applied to the replication index"},
     {"rounds", 1.0, "rounds per job (unused, present for the common base)"}},
    [](const JobContext& job) {
      JobResult result;
      result.metrics["echo"] =
          job.params.get("gain", 0.0) * (1.0 + job.replication);
      result.metrics["pdr"] = 1.0;
      result.rounds = 1;
      return result;
    },
    /*defaultTargetMetric=*/"echo",
    /*defaultEmit=*/{"campaign_csv"},
}};

TEST(PluginScenarioTest, RegistrarRunsBeforeMain) {
  const ScenarioInfo* info = ScenarioRegistry::global().find("plugin-echo");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->defaultTargetMetric, "echo");
  EXPECT_EQ(info->defaultEmit, std::vector<std::string>{"campaign_csv"});
  // The registry's listings and defaults() see it like any built-in.
  EXPECT_NE(registeredScenarioList().find("plugin-echo"), std::string::npos);
  EXPECT_DOUBLE_EQ(
      ScenarioRegistry::global().defaults("plugin-echo").get("gain", 0.0),
      2.0);
}

TEST(PluginScenarioTest, SpecDrivenCampaignRunsEndToEnd) {
  // Specs for plug-in scenarios parse anywhere (the registry is only
  // consulted at plan time), so this text could ship in any repo.
  const std::string text =
      "{\n"
      "  \"format\": \"vanet-campaign-spec\",\n"
      "  \"version\": 1,\n"
      "  \"name\": \"plugin_echo\",\n"
      "  \"scenario\": \"plugin-echo\",\n"
      "  \"seed\": 42,\n"
      "  \"replications\": 2,\n"
      "  \"base\": {\"gain\": 3},\n"
      "  \"grid\": [{\"axis\": \"gain\", \"values\": [1, 3]}]\n"
      "}\n";
  const CampaignSpec spec = parseCampaignSpec(text);
  EXPECT_EQ(spec.scenario, "plugin-echo");

  CampaignConfig config = campaignConfigFromSpec(spec);
  config.threads = 1;
  const CampaignResult result = runCampaign(config);
  ASSERT_EQ(result.points.size(), 2u);
  // replications 1 and 2 of gain g average to g * 1.5.
  EXPECT_DOUBLE_EQ(result.points[0].metrics.at("echo").mean(), 1.5);
  EXPECT_DOUBLE_EQ(result.points[1].metrics.at("echo").mean(), 4.5);

  // The scenario's defaultEmit drives the artefact list.
  const std::vector<SpecEmit> emits = resolvedEmits(spec);
  ASSERT_EQ(emits.size(), 1u);
  EXPECT_EQ(emits[0].kind, "campaign_csv");
  EXPECT_EQ(emits[0].name, "plugin_echo");

  const std::string dir =
      (std::filesystem::temp_directory_path() / "vanet_plugin_spec_test")
          .string();
  std::filesystem::create_directories(dir);
  std::vector<std::string> written;
  ASSERT_TRUE(writeSpecArtifacts(spec, result, dir, written));
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], dir + "/plugin_echo_campaign.csv");
  std::ifstream in(written[0]);
  EXPECT_TRUE(in.good());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vanet::runner
