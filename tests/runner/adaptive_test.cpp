/// \file adaptive_test.cpp
/// Adaptive (CI95-targeted) replication: the wave schedule, the stop
/// rule, and the determinism guarantees -- byte-identity across thread
/// counts, streaming, and shard processes -- plus the v2 partial format
/// and its backward-compatible v1 reader.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runner/campaign.h"
#include "runner/emit.h"

namespace vanet::runner {
namespace {

/// Registers (once) a synthetic scenario whose "m" metric noise is
/// controlled by the "noise" param: 0 reports a constant, anything else
/// spreads samples by a seed hash -- so convergence behaviour is exactly
/// steerable per grid point.
const std::string& noiseScenario() {
  static const std::string name = [] {
    ScenarioRegistry::global().add(ScenarioInfo{
        "adaptive-test-noise",
        "constant or seed-noisy metric, no simulation",
        {{"noise", 0.0, "0 = constant metric, else noise amplitude"}},
        [](const JobContext& context) {
          JobResult result;
          const double noise = context.params.get("noise", 0.0);
          result.metrics["m"] =
              10.0 + noise * static_cast<double>(context.seed % 1000u);
          result.rounds = 1;
          return result;
        }});
    return std::string("adaptive-test-noise");
  }();
  return name;
}

CampaignConfig adaptiveConfig(double targetCi, int minReps, int maxReps) {
  CampaignConfig config;
  config.scenario = noiseScenario();
  config.masterSeed = 2008;
  config.targetRelativeCi95 = targetCi;
  config.minReplications = minReps;
  config.maxReplications = maxReps;
  config.targetMetric = "m";  // the synthetic scenario has no default
  return config;
}

TEST(AdaptiveTest, ConvergesAtMinWhenTight) {
  // A constant metric has CI95 == 0 from the second sample on: the
  // point must stop exactly at the floor, leaving the rest of the
  // budget unspent.
  CampaignConfig config = adaptiveConfig(0.05, 4, 64);
  config.base.set("noise", 0.0);
  const CampaignResult result = runCampaign(config);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].replications, 4);
  EXPECT_DOUBLE_EQ(result.points[0].achievedCi95, 0.0);
  EXPECT_EQ(result.jobCount, 4u);
  EXPECT_EQ(result.totalJobs, 64u);  // the budget, not the spend
  EXPECT_EQ(result.waves, 1);
}

TEST(AdaptiveTest, HitsMaxWhenNoisy) {
  // An unattainable target drives the point through every doubling wave
  // to the cap: 2, 4, 8, 16 covered replications = 4 waves.
  CampaignConfig config = adaptiveConfig(1e-9, 2, 16);
  config.base.set("noise", 1.0);
  const CampaignResult result = runCampaign(config);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].replications, 16);
  EXPECT_GT(result.points[0].achievedCi95, 0.0);
  EXPECT_EQ(result.jobCount, 16u);
  EXPECT_EQ(result.waves, 4);
}

TEST(AdaptiveTest, NeverStopsOnASingleSample) {
  // minReplications = 1: after wave 0 every point has one sample, whose
  // confidence95() is 0 -- which must read "no interval yet", not
  // "target met". The constant point converges at the next barrier.
  CampaignConfig config = adaptiveConfig(0.5, 1, 8);
  config.base.set("noise", 0.0);
  const CampaignResult result = runCampaign(config);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].replications, 2);
  EXPECT_EQ(result.waves, 2);
}

TEST(AdaptiveTest, MixedGridStopsPerPoint) {
  // noise=0 converges at the floor while noise=1 runs to the cap -- the
  // whole purpose of adaptivity: cheap points stop burning budget.
  CampaignConfig config = adaptiveConfig(0.05, 2, 16);
  config.grid.add("noise", {0.0, 1.0});
  const CampaignResult result = runCampaign(config);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[0].replications, 2);
  EXPECT_EQ(result.points[1].replications, 16);
  EXPECT_EQ(result.jobCount, 18u);
  // The emitted summaries carry reps used and achieved CI.
  const std::string json = campaignPointsJson(result);
  EXPECT_NE(json.find("\"replications\":2"), std::string::npos);
  EXPECT_NE(json.find("\"replications\":16"), std::string::npos);
  EXPECT_NE(json.find("\"achieved_ci95\":"), std::string::npos);
  const std::string csv = campaignCsv(result);
  EXPECT_NE(csv.find("m_ci95"), std::string::npos);
}

TEST(AdaptiveTest, StoppedPointRanTheFixedCountSeedPrefix) {
  // Seeds derive from the global (point, replication) index with the
  // *cap* as stride: an adaptive point that stopped at r replications
  // folded exactly the first r streams of the budgeted layout. Rebuild
  // that fold by hand from the plan and compare states bit for bit.
  CampaignConfig config = adaptiveConfig(1e-9, 3, 8);
  config.base.set("noise", 1.0);  // never converges: runs all 8
  const CampaignResult maxed = runCampaign(config);
  ASSERT_EQ(maxed.points[0].replications, 8);

  const CampaignPlan plan = buildPlan(config);
  RunningStats expected;
  for (int rep = 0; rep < 8; ++rep) {
    const JobSpec spec = plan.pointJob(0, rep);
    EXPECT_EQ(spec.globalIndex, static_cast<std::size_t>(rep));
    JobContext context;
    context.params = plan.jobParams(spec);
    context.seed = spec.seed;
    context.replication = spec.replication;
    context.jobIndex = spec.globalIndex;
    expected.add(plan.scenario().run(context).metrics.at("m"));
  }
  const RunningStats::State a = maxed.points[0].metrics.at("m").state();
  const RunningStats::State b = expected.state();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.m2, b.m2);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
}

TEST(AdaptiveTest, ByteIdenticalAcrossThreadsAndStreaming) {
  CampaignConfig config = adaptiveConfig(0.2, 2, 32);
  config.grid.add("noise", {0.0, 0.001, 1.0});
  config.threads = 1;
  const CampaignResult serial = runCampaign(config);
  const std::string referenceJson = campaignPointsJson(serial);
  const std::string referenceCsv = campaignCsv(serial);
  for (const int threads : {2, 8}) {
    config.threads = threads;
    config.streaming = false;
    const CampaignResult buffered = runCampaign(config);
    EXPECT_EQ(campaignPointsJson(buffered), referenceJson);
    EXPECT_EQ(campaignCsv(buffered), referenceCsv);
    config.streaming = true;
    const CampaignResult streaming = runCampaign(config);
    EXPECT_EQ(campaignPointsJson(streaming), referenceJson);
    EXPECT_EQ(campaignCsv(streaming), referenceCsv);
  }
}

TEST(AdaptiveTest, RealScenarioByteIdenticalAcrossThreads) {
  // The acceptance shape on a real simulation: urban campaign with the
  // scenario's default target metric (pdr) resolved from the registry.
  CampaignConfig config;
  config.scenario = "urban";
  config.masterSeed = 2008;
  config.targetRelativeCi95 = 0.1;
  config.minReplications = 2;
  config.maxReplications = 6;
  config.base.set("rounds", 1);
  config.base.set("cars", 2);
  config.grid.add("speed_kmh", {20.0, 30.0});
  config.threads = 1;
  const CampaignResult serial = runCampaign(config);
  EXPECT_EQ(serial.targetMetric, "pdr");
  config.threads = 4;
  config.streaming = true;
  const CampaignResult parallel = runCampaign(config);
  EXPECT_EQ(campaignPointsJson(serial), campaignPointsJson(parallel));
  EXPECT_EQ(campaignCsv(serial), campaignCsv(parallel));
}

TEST(AdaptiveTest, TwoShardsMergeBitIdenticalToSingleProcess) {
  // Shards exchange nothing: every point's wave trajectory runs wholly
  // inside its shard, so folding the v2 partials reproduces the
  // unsharded bytes exactly.
  CampaignConfig config = adaptiveConfig(0.2, 2, 32);
  config.grid.add("noise", {0.0, 0.001, 1.0, 2.0});
  config.threads = 1;
  const CampaignResult reference = runCampaign(config);

  config.threads = 2;
  std::vector<CampaignPartial> partials;
  for (int shard = 0; shard < 2; ++shard) {
    config.shard = Shard{shard, 2};
    const CampaignResult result = runCampaign(config);
    partials.push_back(
        parseCampaignPartial(campaignPartialJson(campaignPartial(result))));
  }
  const CampaignResult merged = resultFromPartials(std::move(partials));
  EXPECT_EQ(campaignPointsJson(merged), campaignPointsJson(reference));
  EXPECT_EQ(campaignCsv(merged), campaignCsv(reference));
  EXPECT_EQ(merged.jobCount, reference.jobCount);
  // The executed wave count is reconstructed from the per-point stop
  // points, so merged artefact headers match the unsharded run's.
  EXPECT_EQ(merged.waves, reference.waves);
  EXPECT_DOUBLE_EQ(merged.targetRelativeCi95, 0.2);
  EXPECT_EQ(merged.targetMetric, "m");
}

TEST(AdaptiveTest, PartialRoundTripCarriesAdaptiveHeader) {
  CampaignConfig config = adaptiveConfig(0.1, 2, 8);
  config.base.set("noise", 1.0);
  const CampaignResult result = runCampaign(config);
  const CampaignPartial partial = campaignPartial(result);
  const std::string text = campaignPartialJson(partial);
  EXPECT_NE(text.find("\"version\":2"), std::string::npos);
  EXPECT_NE(text.find("\"target_ci\":0.1"), std::string::npos);
  EXPECT_NE(text.find("\"target_metric\":\"m\""), std::string::npos);
  EXPECT_NE(text.find("\"achieved_ci95\":"), std::string::npos);
  const CampaignPartial parsed = parseCampaignPartial(text);
  EXPECT_EQ(campaignPartialJson(parsed), text);  // byte-stable round trip
  EXPECT_DOUBLE_EQ(parsed.targetRelativeCi95, 0.1);
  EXPECT_EQ(parsed.minReplications, 2);
  EXPECT_EQ(parsed.maxReplications, 8);
  EXPECT_EQ(parsed.targetMetric, "m");
}

TEST(AdaptiveTest, Version1PartialsStillParse) {
  // A v1 file is exactly a v2 file minus the adaptive header and the
  // per-point achieved CIs: derive one from the real serializer by
  // stripping those fields, and check the reader fills the defaults --
  // re-serializing the parse must reproduce the v2 bytes.
  CampaignConfig config;
  config.scenario = noiseScenario();
  config.masterSeed = 7;
  config.replications = 2;
  config.base.set("noise", 1.0);
  const std::string v2 =
      campaignPartialJson(campaignPartial(runCampaign(config)));

  std::string v1 = v2;
  const auto strip = [&v1](const std::string& needle) {
    for (std::size_t at = v1.find(needle); at != std::string::npos;
         at = v1.find(needle)) {
      v1.erase(at, needle.size());
    }
  };
  const std::size_t version = v1.find("\"version\":2");
  ASSERT_NE(version, std::string::npos);
  v1.replace(version, 11, "\"version\":1");
  strip("\"target_ci\":0,\n");
  strip("\"min_replications\":0,\n");
  strip("\"max_replications\":0,\n");
  strip("\"target_metric\":\"\",\n");
  strip(",\"achieved_ci95\":0");
  ASSERT_EQ(v1.find("achieved_ci95"), std::string::npos);

  const CampaignPartial parsed = parseCampaignPartial(v1);
  EXPECT_DOUBLE_EQ(parsed.targetRelativeCi95, 0.0);
  EXPECT_EQ(parsed.minReplications, 0);
  EXPECT_EQ(parsed.maxReplications, 0);
  EXPECT_TRUE(parsed.targetMetric.empty());
  ASSERT_EQ(parsed.points.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.points[0].achievedCi95, 0.0);
  EXPECT_EQ(parsed.points[0].metrics.at("m").count(), 2u);
  // The upgraded re-serialization restores the v2 document bit for bit.
  EXPECT_EQ(campaignPartialJson(parsed), v2);
}

TEST(AdaptiveTest, ParseRejectsMalformedAdaptiveHeader) {
  // A corrupt v2 header (adaptive with impossible bounds) must throw at
  // parse time -- downstream wave arithmetic assumes min >= 1.
  CampaignConfig config = adaptiveConfig(0.1, 2, 8);
  config.base.set("noise", 1.0);
  const std::string good =
      campaignPartialJson(campaignPartial(runCampaign(config)));
  const auto corrupt = [&good](const std::string& from,
                               const std::string& to) {
    std::string text = good;
    const std::size_t at = text.find(from);
    EXPECT_NE(at, std::string::npos);
    text.replace(at, from.size(), to);
    return text;
  };
  EXPECT_THROW(
      parseCampaignPartial(corrupt("\"min_replications\":2",
                                   "\"min_replications\":0")),
      std::runtime_error);
  EXPECT_THROW(
      parseCampaignPartial(corrupt("\"max_replications\":8",
                                   "\"max_replications\":1")),
      std::runtime_error);
  // The untouched document still parses.
  EXPECT_NO_THROW(parseCampaignPartial(good));
}

TEST(AdaptiveTest, MergeRejectsMismatchedStopRules) {
  CampaignConfig config = adaptiveConfig(0.2, 2, 8);
  config.grid.add("noise", {0.0, 1.0});
  config.shard = Shard{0, 2};
  const CampaignPartial shard0 = campaignPartial(runCampaign(config));
  config.targetRelativeCi95 = 0.3;  // different stop rule
  config.shard = Shard{1, 2};
  const CampaignPartial foreign = campaignPartial(runCampaign(config));
  EXPECT_THROW(mergeCampaignPartials({shard0, foreign}), std::runtime_error);
}

TEST(AdaptiveTest, ZeroMeanConvergesOnlyWhenDegenerate) {
  // Relative width is undefined at mean 0: a constant-zero metric is
  // degenerate (CI 0) and stops at the floor; a noisy zero-mean metric
  // must run to the cap instead of dividing by zero.
  static const std::string name = [] {
    ScenarioRegistry::global().add(ScenarioInfo{
        "adaptive-test-zero-mean",
        "zero-mean metric, noise param as amplitude",
        {{"noise", 0.0, "amplitude"}},
        [](const JobContext& context) {
          JobResult result;
          // Alternating sign by replication: every even-sized prefix has
          // mean exactly 0 with a positive CI -- the zero-mean case the
          // stop rule must refuse to divide by.
          const double sign = context.replication % 2 == 0 ? 1.0 : -1.0;
          result.metrics["m"] = context.params.get("noise", 0.0) * sign;
          result.rounds = 1;
          return result;
        }});
    return std::string("adaptive-test-zero-mean");
  }();
  CampaignConfig config;
  config.scenario = name;
  config.masterSeed = 2008;
  config.targetRelativeCi95 = 0.5;
  config.minReplications = 2;
  config.maxReplications = 8;
  config.targetMetric = "m";
  config.base.set("noise", 0.0);
  CampaignResult constant = runCampaign(config);
  EXPECT_EQ(constant.points[0].replications, 2);
  // +-1 alternating: every wave barrier sees mean exactly 0 with CI > 0,
  // so the rule must run to the cap instead of dividing by zero.
  config.base.set("noise", 1.0);
  CampaignResult noisy = runCampaign(config);
  EXPECT_EQ(noisy.points[0].replications, 8);
}

TEST(AdaptiveTest, ValidatesConfig) {
  CampaignConfig config = adaptiveConfig(0.1, 0, 8);
  EXPECT_THROW(buildPlan(config), std::invalid_argument);  // min < 1
  config = adaptiveConfig(0.1, 8, 4);
  EXPECT_THROW(buildPlan(config), std::invalid_argument);  // max < min
  config = adaptiveConfig(0.1, 2, 8);
  config.targetMetric.clear();  // no scenario default either
  EXPECT_THROW(buildPlan(config), std::invalid_argument);
  // An urban campaign resolves the registered default ("pdr").
  CampaignConfig urban;
  urban.scenario = "urban";
  urban.targetRelativeCi95 = 0.1;
  urban.minReplications = 2;
  urban.maxReplications = 4;
  EXPECT_EQ(buildPlan(urban).targetMetric(), "pdr");
}

TEST(AdaptiveTest, WaveScheduleDoublesToTheCap) {
  CampaignConfig config = adaptiveConfig(0.1, 3, 20);
  const CampaignPlan plan = buildPlan(config);
  EXPECT_TRUE(plan.adaptive());
  EXPECT_EQ(plan.waveEndReplication(0), 3);
  EXPECT_EQ(plan.waveEndReplication(1), 6);
  EXPECT_EQ(plan.waveEndReplication(2), 12);
  EXPECT_EQ(plan.waveEndReplication(3), 20);  // capped, not 24
  EXPECT_EQ(plan.waveEndReplication(9), 20);
  EXPECT_EQ(plan.replications(), 20);  // the cap is the seed stride
  // Fixed-count plans are one wave.
  CampaignConfig fixed;
  fixed.scenario = noiseScenario();
  fixed.replications = 5;
  const CampaignPlan fixedPlan = buildPlan(fixed);
  EXPECT_FALSE(fixedPlan.adaptive());
  EXPECT_EQ(fixedPlan.waveEndReplication(0), 5);
}

TEST(AdaptiveTest, AccumulatorEnforcesPerPointReplicationOrder) {
  CampaignConfig config = adaptiveConfig(0.1, 2, 4);
  config.grid.add("noise", {0.0, 1.0});
  const CampaignPlan plan = buildPlan(config);
  CampaignAccumulator accumulator(plan);
  JobResult result;
  result.metrics["m"] = 1.0;
  result.rounds = 1;
  accumulator.fold(0, 0, result);
  accumulator.fold(1, 0, result);  // other point may interleave
  EXPECT_THROW(accumulator.fold(0, 2, result), std::logic_error);  // gap
  EXPECT_THROW(accumulator.fold(0, 0, result), std::logic_error);  // repeat
  accumulator.fold(0, 1, result);
  EXPECT_EQ(accumulator.foldedJobs(), 3u);
}

}  // namespace
}  // namespace vanet::runner
