#include "runner/executor.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "runner/campaign.h"
#include "runner/emit.h"

namespace vanet::runner {
namespace {

/// Registers (once) a cheap synthetic scenario whose result is a pure
/// function of the job seed -- fast enough to run hundreds of jobs, and
/// ordering-sensitive because each metric sample differs per job.
const std::string& cheapScenario() {
  static const std::string name = [] {
    ScenarioRegistry::global().add(ScenarioInfo{
        "executor-test-cheap",
        "seed-hash metric, no simulation",
        {},
        [](const JobContext& context) {
          JobResult result;
          result.metrics["hash"] =
              static_cast<double>(context.seed % 100003u);
          result.rounds = 1;
          return result;
        }});
    return std::string("executor-test-cheap");
  }();
  return name;
}

/// Registers (once) a scenario that fails on one specific job index.
const std::string& throwingScenario() {
  static const std::string name = [] {
    ScenarioRegistry::global().add(ScenarioInfo{
        "executor-test-throws",
        "throws on job 5",
        {},
        [](const JobContext& context) -> JobResult {
          if (context.jobIndex == 5) {
            throw std::runtime_error("job 5 failed");
          }
          JobResult result;
          result.rounds = 1;
          return result;
        }});
    return std::string("executor-test-throws");
  }();
  return name;
}

TEST(ExecutorTest, StreamingMatchesBufferedByteForByte) {
  // A real multi-threaded urban campaign: the streaming reordering
  // window must release results in exactly the buffered fold order.
  CampaignConfig config;
  config.scenario = "urban";
  config.masterSeed = 2008;
  config.replications = 3;
  config.threads = 4;
  config.base.set("rounds", 1);
  config.base.set("cars", 2);
  config.grid.add("speed_kmh", {20.0, 30.0});
  const CampaignResult buffered = runCampaign(config);
  config.streaming = true;
  const CampaignResult streaming = runCampaign(config);
  EXPECT_FALSE(buffered.streaming);
  EXPECT_TRUE(streaming.streaming);
  EXPECT_EQ(campaignPointsJson(buffered), campaignPointsJson(streaming));
  EXPECT_EQ(campaignCsv(buffered), campaignCsv(streaming));
  // Figures flow through the same fold.
  ASSERT_EQ(buffered.points.size(), streaming.points.size());
  for (std::size_t p = 0; p < buffered.points.size(); ++p) {
    for (const auto& [flow, figure] : buffered.points[p].figures) {
      EXPECT_EQ(figureSeriesCsv(figure),
                figureSeriesCsv(streaming.points[p].figures.at(flow)));
    }
  }
}

TEST(ExecutorTest, StreamingHoldsBoundedResultWindow) {
  // 240 jobs, 4 workers: the buffered backend would park 240 results;
  // streaming must never hold more than the O(threads) window cap.
  CampaignConfig config;
  config.scenario = cheapScenario();
  config.replications = 240;
  config.threads = 4;
  config.streaming = true;
  const CampaignResult result = runCampaign(config);
  EXPECT_EQ(result.jobCount, 240u);
  EXPECT_LE(result.peakBufferedResults, streamingWindowCap(4));
  EXPECT_LT(result.peakBufferedResults, result.jobCount);
  // And the buffered run reports the O(jobCount) peak it actually held.
  config.streaming = false;
  EXPECT_EQ(runCampaign(config).peakBufferedResults, 240u);
  // The bound itself is O(threads), not O(jobs).
  EXPECT_EQ(streamingWindowCap(4), 8u);
  EXPECT_EQ(streamingWindowCap(0), 2u);
}

TEST(ExecutorTest, StreamingFoldMatchesBufferedOnManyJobs) {
  CampaignConfig config;
  config.scenario = cheapScenario();
  config.replications = 240;
  config.threads = 4;
  const CampaignResult buffered = runCampaign(config);
  config.streaming = true;
  const CampaignResult streaming = runCampaign(config);
  EXPECT_EQ(campaignPointsJson(buffered), campaignPointsJson(streaming));
}

TEST(ExecutorTest, StreamingWorkerExceptionDiscardsPartialFold) {
  CampaignConfig config;
  config.scenario = throwingScenario();
  config.replications = 16;
  config.threads = 4;
  config.streaming = true;
  // The error is rethrown before any result object exists: a failed
  // streaming run can never emit (or serialize) a truncated summary.
  EXPECT_THROW(runCampaign(config), std::runtime_error);
  config.threads = 1;
  EXPECT_THROW(runCampaign(config), std::runtime_error);
}

TEST(ExecutorTest, RoundThreadsReachEveryJobContext) {
  static const std::string name = [] {
    ScenarioRegistry::global().add(ScenarioInfo{
        "executor-test-round-threads",
        "reports the JobContext roundThreads as a metric",
        {},
        [](const JobContext& context) {
          JobResult result;
          result.metrics["round_threads"] =
              static_cast<double>(context.roundThreads);
          result.rounds = 1;
          return result;
        }});
    return std::string("executor-test-round-threads");
  }();
  CampaignConfig config;
  config.scenario = name;
  config.replications = 4;
  config.threads = 2;
  config.roundThreads = 3;
  const CampaignResult result = runCampaign(config);
  ASSERT_EQ(result.points.size(), 1u);
  const RunningStats& seen = result.points[0].metrics.at("round_threads");
  EXPECT_EQ(seen.count(), 4u);
  EXPECT_DOUBLE_EQ(seen.min(), 3.0);
  EXPECT_DOUBLE_EQ(seen.max(), 3.0);
}

TEST(ExecutorTest, IncompleteAccumulatorRefusesToSurfaceSummaries) {
  CampaignConfig config;
  config.scenario = cheapScenario();
  config.replications = 4;
  const CampaignPlan plan = buildPlan(config);
  CampaignAccumulator accumulator(plan);
  JobResult result;
  result.rounds = 1;
  accumulator.fold(0, 0, result);
  EXPECT_FALSE(accumulator.complete());
  EXPECT_THROW(accumulator.take(), std::logic_error);  // truncated fold
  // Replication gap within the point, and an out-of-range point slot.
  EXPECT_THROW(accumulator.fold(0, 2, result), std::logic_error);
  EXPECT_THROW(accumulator.fold(9, 0, result), std::logic_error);
}

}  // namespace
}  // namespace vanet::runner
