#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/csv.h"
#include "analysis/figures.h"
#include "analysis/table1.h"

namespace vanet::analysis {
namespace {

trace::Table1Data sampleTable() {
  trace::Table1Data data;
  data.rounds = 30;
  for (NodeId car = 1; car <= 3; ++car) {
    trace::Table1Row row;
    row.car = car;
    for (int round = 0; round < 30; ++round) {
      row.txByAp.add(130.0 + car);
      row.lostBefore.add(30.0 + round % 5);
      row.lostAfter.add(13.0 + round % 3);
      row.lostJoint.add(10.0);
      row.pctLostBefore.add(23.4);
      row.pctLostAfter.add(10.5);
      row.pctLostJoint.add(8.0);
    }
    data.rows.push_back(row);
  }
  return data;
}

trace::FlowFigure sampleFigure() {
  trace::FlowFigure figure;
  figure.flow = 1;
  for (std::size_t i = 0; i < 50; ++i) {
    const double p = i < 25 ? 0.9 : 0.4;
    for (const NodeId car : {1, 2, 3}) {
      figure.rxByCar[car].add(i, p);
    }
    figure.afterCoop.add(i, 0.95);
    figure.joint.add(i, 0.97);
  }
  figure.regionBoundary12.add(12.0);
  figure.regionBoundary23.add(35.0);
  return figure;
}

TEST(Table1RendererTest, ContainsAllRowsAndStats) {
  const std::string text = renderTable1(sampleTable());
  EXPECT_NE(text.find("Table 1"), std::string::npos);
  EXPECT_NE(text.find("30 rounds"), std::string::npos);
  EXPECT_NE(text.find("Mean"), std::string::npos);
  EXPECT_NE(text.find("Std. Dev."), std::string::npos);
  EXPECT_NE(text.find("23.4"), std::string::npos);
  EXPECT_NE(text.find("10.5"), std::string::npos);
}

TEST(Table1RendererTest, SummaryComputesReduction) {
  const std::string text = renderLossSummary(sampleTable());
  EXPECT_NE(text.find("car 1"), std::string::npos);
  EXPECT_NE(text.find("23.4% -> 10.5%"), std::string::npos);
  // (23.4 - 10.5) / 23.4 = 55.1% reduction.
  EXPECT_NE(text.find("55.1% reduction"), std::string::npos);
}

TEST(FigureRendererTest, ReceptionFigureStructure) {
  const std::string text = renderReceptionFigure(sampleFigure());
  EXPECT_NE(text.find("addressed to car 1"), std::string::npos);
  EXPECT_NE(text.find("Region I/II boundary"), std::string::npos);
  EXPECT_NE(text.find("Rx in car 1"), std::string::npos);
  EXPECT_NE(text.find("Rx in car 3"), std::string::npos);
  EXPECT_NE(text.find("packet number"), std::string::npos);
}

TEST(FigureRendererTest, CoopFigureReportsCoincidence) {
  const std::string text = renderCoopFigure(sampleFigure());
  EXPECT_NE(text.find("C-ARQ in car 1"), std::string::npos);
  EXPECT_NE(text.find("after coop"), std::string::npos);
  EXPECT_NE(text.find("Joint Rx"), std::string::npos);
  EXPECT_NE(text.find("mean |after-coop - joint|"), std::string::npos);
}

TEST(FigureRendererTest, LeadingEmptyCellsAreTrimmedWithOffsetNote) {
  trace::FlowFigure figure;
  figure.flow = 2;
  // Cells 0..9 never populated (window opened late); 10..29 active.
  for (std::size_t i = 10; i < 30; ++i) {
    for (const NodeId car : {1, 2, 3}) figure.rxByCar[car].add(i, 0.8);
    figure.afterCoop.add(i, 0.9);
    figure.joint.add(i, 0.95);
  }
  figure.regionBoundary12.add(15.0);
  figure.regionBoundary23.add(25.0);
  const std::string text = renderReceptionFigure(figure);
  EXPECT_NE(text.find("absolute offset +10"), std::string::npos);
  // Region boundaries are reported relative to the window start.
  EXPECT_NE(text.find("Region I/II boundary ~ packet 5.0"), std::string::npos);
}

TEST(FigureRendererTest, SparseTailCellsAreDropped) {
  trace::FlowFigure figure;
  figure.flow = 1;
  // 20 well-covered cells (10 samples each), then a one-sample straggler.
  for (std::size_t i = 0; i < 20; ++i) {
    for (int round = 0; round < 10; ++round) {
      figure.joint.add(i, 1.0);
      figure.afterCoop.add(i, 1.0);
      figure.rxByCar[1].add(i, 1.0);
    }
  }
  figure.joint.add(25, 1.0);  // lone tail cell: below the coverage cutoff
  figure.afterCoop.add(25, 0.0);
  figure.rxByCar[1].add(25, 0.0);
  figure.regionBoundary12.add(5.0);
  figure.regionBoundary23.add(15.0);
  const std::string text = renderCoopFigure(figure);
  // The straggler would have produced a max gap of 1.0; trimmed it is 0.
  EXPECT_NE(text.find("max = 0.0000"), std::string::npos);
}

TEST(AsciiPlotTest, MarksSeriesAtCorrectHeights) {
  const std::vector<double> high(20, 0.95);
  const std::vector<double> low(20, 0.05);
  const std::string text = asciiPlot({high, low}, {"high", "low"}, 20, 10);
  std::istringstream lines(text);
  std::string first;
  std::getline(lines, first);
  EXPECT_NE(first.find('*'), std::string::npos);  // high series on top row
  EXPECT_NE(text.find("+ = low"), std::string::npos);
}

TEST(CsvTest, SeriesRoundTrip) {
  const std::string path = ::testing::TempDir() + "/series_test.csv";
  ASSERT_TRUE(writeSeriesCsv(path, "packet", {"a", "b"},
                             {{1.0, 2.0, 3.0}, {0.5, 0.25}}));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "packet,a,b");
  std::string row1;
  std::getline(in, row1);
  EXPECT_EQ(row1, "1,1,0.5");
  std::string row3;
  std::getline(in, row3);  // row 2
  std::getline(in, row3);  // row 3: b column exhausted
  EXPECT_EQ(row3, "3,3,");
  std::remove(path.c_str());
}

TEST(CsvTest, Table1Export) {
  const std::string path = ::testing::TempDir() + "/table1_test.csv";
  ASSERT_TRUE(writeTable1Csv(path, sampleTable()));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("pct_before"), std::string::npos);
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

TEST(CsvTest, UnwritablePathFails) {
  EXPECT_FALSE(writeSeriesCsv("/nonexistent-dir/x.csv", "i", {"a"}, {{1.0}}));
}

}  // namespace
}  // namespace vanet::analysis
