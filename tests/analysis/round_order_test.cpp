/// \file round_order_test.cpp
/// Round-order invariance of the experiment fold layer: outcomes arriving
/// in any permutation through the reorder window must merge to exactly the
/// serial reference, and the experiment/campaign drivers must be
/// bit-identical at --round-threads 1 vs N.

#include <gtest/gtest.h>

#include <vector>

#include "analysis/experiment.h"
#include "analysis/round.h"
#include "analysis/serialize.h"
#include "runner/campaign.h"
#include "runner/emit.h"
#include "trace/serialize.h"
#include "util/reorder.h"
#include "util/thread_pool.h"

namespace vanet::analysis {
namespace {

UrbanExperimentConfig tinyUrbanConfig() {
  UrbanExperimentConfig config;
  config.rounds = 4;
  config.seed = 7;
  return config;
}

/// Serial reference: the exact fold run() performs, round by round.
struct UrbanReference {
  trace::Table1Data table1;
  std::map<FlowId, trace::FlowFigure> figures;
  ProtocolTotals totals;
};

UrbanReference urbanSerialReference(const UrbanExperiment& experiment,
                                    int rounds) {
  trace::Table1Accumulator table1;
  trace::FigureAccumulator figures;
  UrbanReference reference;
  for (int round = 0; round < rounds; ++round) {
    UrbanRoundOutcome outcome = experiment.runRound(round);
    table1.addRound(outcome.trace);
    figures.addRound(outcome.trace);
    reference.totals.merge(outcome.totals);
  }
  reference.table1 = table1.data();
  reference.figures = figures.flows();
  return reference;
}

std::string figuresJson(const std::map<FlowId, trace::FlowFigure>& figures) {
  std::string out;
  for (const auto& [flow, figure] : figures) {
    out += trace::flowFigureToJson(figure);
    out += "\n";
  }
  return out;
}

TEST(RoundOrderTest, PermutedArrivalThroughWindowMatchesSerialReference) {
  const UrbanExperimentConfig config = tinyUrbanConfig();
  const UrbanExperiment experiment(config);
  const UrbanReference reference =
      urbanSerialReference(experiment, config.rounds);

  // Deliver the rounds through the reorder window in a scrambled arrival
  // order (as a racing pool would): the accumulators must see them in
  // round order and produce byte-identical aggregates.
  std::vector<UrbanRoundOutcome> outcomes;
  for (int round = 0; round < config.rounds; ++round) {
    outcomes.push_back(experiment.runRound(round));
  }
  trace::Table1Accumulator table1;
  trace::FigureAccumulator figures;
  ProtocolTotals totals;
  util::ReorderWindow<UrbanRoundOutcome> window(
      static_cast<std::size_t>(config.rounds),
      static_cast<std::size_t>(config.rounds),
      [&](std::size_t, UrbanRoundOutcome& outcome) {
        table1.addRound(outcome.trace);
        figures.addRound(outcome.trace);
        totals.merge(outcome.totals);
      });
  std::size_t claimed = 0;
  for (int round = 0; round < config.rounds; ++round) {
    ASSERT_TRUE(window.claim(claimed));
  }
  for (const std::size_t arrival : {2u, 0u, 3u, 1u}) {
    window.complete(arrival, std::move(outcomes[arrival]));
  }
  window.rethrowIfFailed();
  EXPECT_EQ(window.folded(), static_cast<std::size_t>(config.rounds));

  EXPECT_EQ(trace::table1ToJson(table1.data()),
            trace::table1ToJson(reference.table1));
  EXPECT_EQ(figuresJson(figures.flows()), figuresJson(reference.figures));
  EXPECT_EQ(protocolTotalsToJson(totals),
            protocolTotalsToJson(reference.totals));
}

TEST(RoundOrderTest, UrbanRunIsBitIdenticalAcrossRoundWorkerCounts) {
  // Give the shared budget room so the parallel path genuinely runs
  // multi-threaded even on small CI machines.
  util::ThreadBudget::global().setLimit(8);
  UrbanExperimentConfig config = tinyUrbanConfig();
  config.roundThreads = 1;
  const UrbanExperimentResult serial = UrbanExperiment(config).run();
  config.roundThreads = 4;
  const UrbanExperimentResult parallel = UrbanExperiment(config).run();
  util::ThreadBudget::global().setLimit(0);

  EXPECT_EQ(serial.roundWorkers, 1);
  EXPECT_EQ(parallel.roundWorkers, 4);
  EXPECT_EQ(trace::table1ToJson(serial.table1),
            trace::table1ToJson(parallel.table1));
  EXPECT_EQ(figuresJson(serial.figures), figuresJson(parallel.figures));
  EXPECT_EQ(protocolTotalsToJson(serial.totals),
            protocolTotalsToJson(parallel.totals));
}

TEST(RoundOrderTest, HighwayRunIsBitIdenticalAcrossRoundWorkerCounts) {
  util::ThreadBudget::global().setLimit(8);
  HighwayExperimentConfig config;
  config.scenario.apCount = 2;
  config.scenario.roadLengthMetres = 2000.0;
  config.scenario.firstApArc = 600.0;
  config.carq.fileSizeSeqs = 60;
  config.rounds = 3;
  config.seed = 5;
  config.roundThreads = 1;
  const HighwayExperimentResult serial = HighwayExperiment(config).run();
  config.roundThreads = 3;
  const HighwayExperimentResult parallel = HighwayExperiment(config).run();
  util::ThreadBudget::global().setLimit(0);

  EXPECT_EQ(trace::table1ToJson(serial.table1),
            trace::table1ToJson(parallel.table1));
  EXPECT_EQ(protocolTotalsToJson(serial.totals),
            protocolTotalsToJson(parallel.totals));
  ASSERT_EQ(serial.cars.size(), parallel.cars.size());
  for (const auto& [car, serialCar] : serial.cars) {
    const HighwayCarResult& parallelCar = parallel.cars.at(car);
    EXPECT_EQ(serialCar.completedRounds, parallelCar.completedRounds);
    EXPECT_EQ(trace::runningStatsToJson(serialCar.apVisitsToComplete),
              trace::runningStatsToJson(parallelCar.apVisitsToComplete));
    EXPECT_EQ(trace::runningStatsToJson(serialCar.timeToCompleteSeconds),
              trace::runningStatsToJson(parallelCar.timeToCompleteSeconds));
  }
}

TEST(RoundOrderTest, RoundEngineDegradesToInlineWhenBudgetIsExhausted) {
  // Saturate the budget: a non-forced round engine must fall back to the
  // calling thread alone -- and still produce the same bytes.
  util::ThreadBudget& budget = util::ThreadBudget::global();
  const int hog = budget.acquire(budget.limit(), /*force=*/true);
  UrbanExperimentConfig config = tinyUrbanConfig();
  config.rounds = 2;
  config.roundThreads = 4;
  const UrbanExperimentResult starved = UrbanExperiment(config).run();
  budget.release(hog);
  EXPECT_EQ(starved.roundWorkers, 1);

  config.roundThreads = 1;
  const UrbanExperimentResult serial = UrbanExperiment(config).run();
  EXPECT_EQ(trace::table1ToJson(starved.table1),
            trace::table1ToJson(serial.table1));
}

TEST(RoundOrderTest, CampaignRoundThreadsKeepMergedBytesIdentical) {
  util::ThreadBudget::global().setLimit(8);
  runner::CampaignConfig config;
  config.scenario = "urban";
  config.masterSeed = 2008;
  config.replications = 2;
  config.threads = 1;
  config.base.set("rounds", 2);
  config.base.set("cars", 2);
  config.roundThreads = 1;
  const runner::CampaignResult serial = runner::runCampaign(config);
  config.roundThreads = 4;
  const runner::CampaignResult parallel = runner::runCampaign(config);
  util::ThreadBudget::global().setLimit(0);
  EXPECT_EQ(runner::campaignPointsJson(serial),
            runner::campaignPointsJson(parallel));
  EXPECT_EQ(runner::campaignCsv(serial), runner::campaignCsv(parallel));
}

}  // namespace
}  // namespace vanet::analysis
