/// Tests for FlowFigure::merge and SeriesAccumulator::merge: the
/// cross-replication figure combination the campaign engine folds in job
/// order. Checks identity (merge with empty), associativity, and
/// merge-order invariance against a serial reference accumulation over
/// the same samples.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "trace/aggregate.h"
#include "util/rng.h"
#include "util/stats.h"

namespace vanet::trace {
namespace {

/// One synthetic "replication": per-car reception samples over `packets`
/// packet numbers, drawn from a deterministic stream.
struct SyntheticRound {
  std::vector<std::vector<double>> rxByCar;  ///< [car][packet]
  std::vector<double> afterCoop;
  std::vector<double> joint;
  double boundary12 = 0.0;
  double boundary23 = 0.0;
};

SyntheticRound makeRound(Rng& rng, std::size_t cars, std::size_t packets) {
  SyntheticRound round;
  round.rxByCar.resize(cars);
  for (std::size_t car = 0; car < cars; ++car) {
    for (std::size_t i = 0; i < packets; ++i) {
      round.rxByCar[car].push_back(rng.bernoulli(0.7) ? 1.0 : 0.0);
    }
  }
  for (std::size_t i = 0; i < packets; ++i) {
    round.afterCoop.push_back(rng.bernoulli(0.9) ? 1.0 : 0.0);
    round.joint.push_back(rng.bernoulli(0.95) ? 1.0 : 0.0);
  }
  round.boundary12 = rng.uniform(10.0, 20.0);
  round.boundary23 = rng.uniform(80.0, 120.0);
  return round;
}

void addRound(FlowFigure& figure, const SyntheticRound& round) {
  for (std::size_t car = 0; car < round.rxByCar.size(); ++car) {
    for (std::size_t i = 0; i < round.rxByCar[car].size(); ++i) {
      figure.rxByCar[static_cast<NodeId>(car + 1)].add(
          i, round.rxByCar[car][i]);
    }
  }
  for (std::size_t i = 0; i < round.afterCoop.size(); ++i) {
    figure.afterCoop.add(i, round.afterCoop[i]);
    figure.joint.add(i, round.joint[i]);
  }
  figure.regionBoundary12.add(round.boundary12);
  figure.regionBoundary23.add(round.boundary23);
}

/// A figure holding `rounds` synthetic rounds from the named stream, with
/// per-round series lengths varying so merges must grow the series.
FlowFigure makeFigure(std::uint64_t seed, int rounds,
                      std::size_t packets = 40) {
  Rng rng(seed);
  FlowFigure figure;
  figure.flow = 1;
  for (int r = 0; r < rounds; ++r) {
    addRound(figure, makeRound(rng, /*cars=*/3, packets + (r % 3) * 5));
  }
  return figure;
}

void expectStatsNear(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_NEAR(a.mean(), b.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), b.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
}

void expectSeriesNear(const SeriesAccumulator& a, const SeriesAccumulator& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expectStatsNear(a.at(i), b.at(i));
  }
}

void expectFiguresNear(const FlowFigure& a, const FlowFigure& b) {
  EXPECT_EQ(a.flow, b.flow);
  ASSERT_EQ(a.rxByCar.size(), b.rxByCar.size());
  for (const auto& [car, series] : a.rxByCar) {
    ASSERT_TRUE(b.rxByCar.count(car));
    expectSeriesNear(series, b.rxByCar.at(car));
  }
  expectSeriesNear(a.afterCoop, b.afterCoop);
  expectSeriesNear(a.joint, b.joint);
  expectStatsNear(a.regionBoundary12, b.regionBoundary12);
  expectStatsNear(a.regionBoundary23, b.regionBoundary23);
}

TEST(SeriesAccumulatorMergeTest, MergeWithEmptyIsIdentity) {
  SeriesAccumulator series;
  series.add(0, 1.0);
  series.add(2, 0.5);
  SeriesAccumulator copy = series;
  copy.merge(SeriesAccumulator{});
  expectSeriesNear(copy, series);

  SeriesAccumulator empty;
  empty.merge(series);
  expectSeriesNear(empty, series);
}

TEST(SeriesAccumulatorMergeTest, GrowsToTheLongerSeries) {
  SeriesAccumulator shorter;
  shorter.add(0, 1.0);
  SeriesAccumulator longer;
  longer.add(4, 2.0);
  shorter.merge(longer);
  ASSERT_EQ(shorter.size(), 5u);
  EXPECT_EQ(shorter.at(0).count(), 1u);
  EXPECT_EQ(shorter.at(1).count(), 0u);
  EXPECT_DOUBLE_EQ(shorter.at(4).mean(), 2.0);
}

TEST(FlowFigureMergeTest, MergeWithEmptyIsIdentity) {
  const FlowFigure figure = makeFigure(1, 4);
  FlowFigure merged = figure;
  merged.merge(FlowFigure{});
  expectFiguresNear(merged, figure);

  FlowFigure empty;
  empty.merge(figure);
  expectFiguresNear(empty, figure);
  EXPECT_EQ(empty.flow, figure.flow);  // adopted from the non-empty side
}

TEST(FlowFigureMergeTest, IsAssociative) {
  const FlowFigure a = makeFigure(1, 3);
  const FlowFigure b = makeFigure(2, 4);
  const FlowFigure c = makeFigure(3, 2);

  FlowFigure leftFold = a;  // (a + b) + c
  leftFold.merge(b);
  leftFold.merge(c);

  FlowFigure bc = b;  // a + (b + c)
  bc.merge(c);
  FlowFigure rightFold = a;
  rightFold.merge(bc);

  expectFiguresNear(leftFold, rightFold);
}

TEST(FlowFigureMergeTest, MergeOrderMatchesSerialReference) {
  // Serial reference: every round of every replication folded into one
  // figure in a single pass.
  Rng rng(7);
  std::vector<SyntheticRound> rounds;
  for (int r = 0; r < 12; ++r) {
    rounds.push_back(makeRound(rng, 3, 40 + (r % 4) * 5));
  }
  FlowFigure reference;
  reference.flow = 1;
  for (const SyntheticRound& round : rounds) {
    addRound(reference, round);
  }

  // Split the same rounds into per-replication figures and merge those in
  // several different orders.
  std::vector<FlowFigure> parts(4);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    parts[p].flow = 1;
    for (std::size_t r = p * 3; r < (p + 1) * 3; ++r) {
      addRound(parts[p], rounds[r]);
    }
  }
  for (const std::vector<std::size_t>& order :
       {std::vector<std::size_t>{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}) {
    FlowFigure merged;
    for (const std::size_t p : order) {
      merged.merge(parts[p]);
    }
    expectFiguresNear(merged, reference);
  }
}

TEST(FlowFigureMergeTest, CarsMissingOnOneSideAreKept) {
  FlowFigure a;
  a.flow = 2;
  a.rxByCar[1].add(0, 1.0);
  FlowFigure b;
  b.flow = 2;
  b.rxByCar[3].add(0, 0.0);
  a.merge(b);
  ASSERT_EQ(a.rxByCar.size(), 2u);
  EXPECT_EQ(a.rxByCar.at(1).at(0).count(), 1u);
  EXPECT_EQ(a.rxByCar.at(3).at(0).count(), 1u);
}

}  // namespace
}  // namespace vanet::trace
