#include "analysis/experiment.h"

#include <gtest/gtest.h>

#include "analysis/round.h"

namespace vanet::analysis {
namespace {

UrbanExperimentConfig smallUrbanConfig() {
  UrbanExperimentConfig config;
  config.rounds = 2;
  config.seed = 7;
  return config;
}

TEST(UrbanExperimentTest, ProducesRowsForEveryCar) {
  UrbanExperiment experiment(smallUrbanConfig());
  const UrbanExperimentResult result = experiment.run();
  EXPECT_EQ(result.rounds, 2);
  EXPECT_EQ(result.table1.rounds, 2);
  ASSERT_EQ(result.table1.rows.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.table1.rows[i].car, static_cast<NodeId>(i + 1));
    EXPECT_EQ(result.table1.rows[i].txByAp.count(), 2u);
  }
}

TEST(UrbanExperimentTest, CarsActuallyReceiveData) {
  UrbanExperiment experiment(smallUrbanConfig());
  const UrbanExperimentResult result = experiment.run();
  for (const auto& row : result.table1.rows) {
    EXPECT_GT(row.txByAp.mean(), 20.0) << "car " << row.car;
    // Losses exist but are not total.
    EXPECT_GT(row.pctLostBefore.mean(), 0.0);
    EXPECT_LT(row.pctLostBefore.mean(), 95.0);
  }
}

TEST(UrbanExperimentTest, FiguresCoverAllFlows) {
  UrbanExperiment experiment(smallUrbanConfig());
  const UrbanExperimentResult result = experiment.run();
  ASSERT_EQ(result.figures.size(), 3u);
  for (const auto& [flow, figure] : result.figures) {
    EXPECT_EQ(figure.flow, flow);
    EXPECT_EQ(figure.rxByCar.size(), 3u);
    EXPECT_GT(figure.afterCoop.size(), 0u);
    EXPECT_GT(figure.joint.size(), 0u);
  }
}

TEST(UrbanExperimentTest, DeterministicForSameSeed) {
  UrbanExperiment a(smallUrbanConfig());
  UrbanExperiment b(smallUrbanConfig());
  const auto ra = a.run();
  const auto rb = b.run();
  for (std::size_t i = 0; i < ra.table1.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.table1.rows[i].lostBefore.mean(),
                     rb.table1.rows[i].lostBefore.mean());
    EXPECT_DOUBLE_EQ(ra.table1.rows[i].lostAfter.mean(),
                     rb.table1.rows[i].lostAfter.mean());
  }
}

TEST(UrbanExperimentTest, DifferentSeedsDiffer) {
  UrbanExperimentConfig configA = smallUrbanConfig();
  UrbanExperimentConfig configB = smallUrbanConfig();
  configB.seed = 8;
  const auto ra = UrbanExperiment(configA).run();
  const auto rb = UrbanExperiment(configB).run();
  bool anyDifference = false;
  for (std::size_t i = 0; i < ra.table1.rows.size(); ++i) {
    if (ra.table1.rows[i].lostBefore.mean() !=
        rb.table1.rows[i].lostBefore.mean()) {
      anyDifference = true;
    }
  }
  EXPECT_TRUE(anyDifference);
}

TEST(UrbanExperimentTest, ProtocolTotalsArePopulated) {
  UrbanExperiment experiment(smallUrbanConfig());
  const UrbanExperimentResult result = experiment.run();
  EXPECT_GT(result.totals.hellosPerRound.mean(), 10.0);
  EXPECT_GT(result.totals.bufferedPerRound.mean(), 0.0);
  EXPECT_GT(result.totals.requestsPerRound.mean(), 0.0);
  EXPECT_GT(result.totals.medium.framesTransmitted, 100u);
  EXPECT_GT(result.totals.medium.framesDelivered, 100u);
}

TEST(UrbanExperimentTest, CoopDisabledYieldsNoRecovery) {
  UrbanExperimentConfig config = smallUrbanConfig();
  config.carq.cooperationEnabled = false;
  const auto result = UrbanExperiment(config).run();
  for (const auto& row : result.table1.rows) {
    EXPECT_DOUBLE_EQ(row.lostBefore.mean(), row.lostAfter.mean());
  }
  EXPECT_DOUBLE_EQ(result.totals.requestsPerRound.mean(), 0.0);
}

TEST(HighwayExperimentTest, DriveThruLossStats) {
  HighwayExperimentConfig config;
  config.scenario.apCount = 1;
  config.scenario.roadLengthMetres = 2000.0;
  config.scenario.firstApArc = 1000.0;
  config.rounds = 2;
  config.seed = 3;
  HighwayExperiment experiment(config);
  const HighwayExperimentResult result = experiment.run();
  EXPECT_EQ(result.table1.rows.size(), 3u);
  for (const auto& row : result.table1.rows) {
    EXPECT_GT(row.txByAp.mean(), 0.0);
  }
}

TEST(HighwayExperimentTest, FileDownloadCompletesWithEnoughAps) {
  HighwayExperimentConfig config;
  config.scenario.apCount = 5;
  config.scenario.carCount = 3;
  config.carq.fileSizeSeqs = 60;
  config.rounds = 2;
  config.seed = 5;
  HighwayExperiment experiment(config);
  const HighwayExperimentResult result = experiment.run();
  ASSERT_EQ(result.cars.size(), 3u);
  int completions = 0;
  for (const auto& [car, carResult] : result.cars) {
    completions += carResult.completedRounds;
    if (carResult.completedRounds > 0) {
      EXPECT_GE(carResult.apVisitsToComplete.mean(), 1.0);
      EXPECT_LE(carResult.apVisitsToComplete.mean(), 5.0);
    }
  }
  EXPECT_GT(completions, 0);
}

TEST(BuildLinkModelTest, HonoursChannelConfig) {
  const geom::Polyline road{{{0.0, 0.0}, {100.0, 0.0}}};
  ChannelConfig config;
  config.ricianK = -1.0;  // no fading
  auto model = buildLinkModel(road, config, Rng{1});
  Rng rng{2};
  const double mean =
      model->meanRxPowerDbm(kFirstApId, {0.0, 0.0}, 18.0, 1, {10.0, 0.0});
  EXPECT_DOUBLE_EQ(model->fadedRxPowerDbm(mean, rng), mean);
}

}  // namespace
}  // namespace vanet::analysis
