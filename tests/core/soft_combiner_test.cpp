#include "core/soft_combiner.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vanet::carq {
namespace {

TEST(SoftCombinerTest, EmptyHasNoEnergy) {
  SoftCombiner combiner;
  EXPECT_EQ(combiner.copies(1), 0);
  EXPECT_TRUE(std::isinf(combiner.combinedDb(1)));
  EXPECT_LT(combiner.combinedDb(1), 0.0);
  EXPECT_EQ(combiner.trackedCount(), 0u);
}

TEST(SoftCombinerTest, SingleCopyPassesThrough) {
  SoftCombiner combiner;
  const double combined = combiner.accumulateDb(7, 3.0);
  EXPECT_NEAR(combined, 3.0, 1e-9);
  EXPECT_EQ(combiner.copies(7), 1);
}

TEST(SoftCombinerTest, EqualCopiesAddThreeDb) {
  // Two equal-power copies double the linear energy: +3.01 dB.
  SoftCombiner combiner;
  combiner.accumulateDb(1, 5.0);
  const double combined = combiner.accumulateDb(1, 5.0);
  EXPECT_NEAR(combined, 5.0 + 10.0 * std::log10(2.0), 1e-9);
}

TEST(SoftCombinerTest, MrcIsLinearSum) {
  SoftCombiner combiner;
  combiner.accumulateDb(1, 0.0);   // 1.0 linear
  combiner.accumulateDb(1, 10.0);  // 10.0 linear
  EXPECT_NEAR(combiner.combinedDb(1), 10.0 * std::log10(11.0), 1e-9);
  EXPECT_EQ(combiner.copies(1), 2);
}

TEST(SoftCombinerTest, SequencesAreIndependent) {
  SoftCombiner combiner;
  combiner.accumulateDb(1, 3.0);
  combiner.accumulateDb(2, 9.0);
  EXPECT_NEAR(combiner.combinedDb(1), 3.0, 1e-9);
  EXPECT_NEAR(combiner.combinedDb(2), 9.0, 1e-9);
  EXPECT_EQ(combiner.trackedCount(), 2u);
}

TEST(SoftCombinerTest, ClearDropsState) {
  SoftCombiner combiner;
  combiner.accumulateDb(1, 3.0);
  combiner.clear(1);
  EXPECT_EQ(combiner.copies(1), 0);
  EXPECT_EQ(combiner.trackedCount(), 0u);
  // Re-accumulation starts fresh.
  EXPECT_NEAR(combiner.accumulateDb(1, 0.0), 0.0, 1e-9);
}

TEST(SoftCombinerTest, CombiningIsMonotone) {
  SoftCombiner combiner;
  double previous = -1e9;
  for (int copy = 0; copy < 20; ++copy) {
    const double combined = combiner.accumulateDb(1, -3.0);
    EXPECT_GT(combined, previous);
    previous = combined;
  }
  // 20 copies at -3 dB: 10 log10(20) - 3 dB.
  EXPECT_NEAR(previous, 10.0 * std::log10(20.0) - 3.0, 1e-9);
}

TEST(SoftCombinerTest, NegativeSinrStillAccumulates) {
  SoftCombiner combiner;
  combiner.accumulateDb(1, -20.0);
  combiner.accumulateDb(1, -20.0);
  EXPECT_NEAR(combiner.combinedDb(1), -20.0 + 10.0 * std::log10(2.0), 1e-9);
}

}  // namespace
}  // namespace vanet::carq
