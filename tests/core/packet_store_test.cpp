#include "core/packet_store.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vanet::carq {
namespace {

TEST(PacketStoreTest, EmptyStore) {
  PacketStore store;
  EXPECT_EQ(store.firstSeen(), 0);
  EXPECT_EQ(store.lastSeen(), 0);
  EXPECT_TRUE(store.missingInWindow().empty());
  EXPECT_FALSE(store.hasOwn(1));
  EXPECT_EQ(store.directCount(), 0u);
}

TEST(PacketStoreTest, DirectReceptionTracksWindow) {
  PacketStore store;
  store.noteDirect(5);
  store.noteDirect(9);
  store.noteDirect(7);
  EXPECT_EQ(store.firstSeen(), 5);
  EXPECT_EQ(store.lastSeen(), 9);
  EXPECT_TRUE(store.hasOwn(5));
  EXPECT_FALSE(store.hasOwn(6));
  EXPECT_EQ(store.directCount(), 3u);
}

TEST(PacketStoreTest, MissingInWindowIsPaperSemantics) {
  // The paper: recover packets from the first to the last received.
  PacketStore store;
  store.noteDirect(3);
  store.noteDirect(7);
  EXPECT_EQ(store.missingInWindow(), (std::vector<SeqNo>{4, 5, 6}));
  // Packets before 3 and after 7 are unknown to the car.
}

TEST(PacketStoreTest, RecoveryFillsHoles) {
  PacketStore store;
  store.noteDirect(1);
  store.noteDirect(4);
  store.noteRecovered(2);
  EXPECT_EQ(store.missingInWindow(), (std::vector<SeqNo>{3}));
  EXPECT_TRUE(store.hasOwn(2));
  EXPECT_EQ(store.recoveredCount(), 1u);
}

TEST(PacketStoreTest, RecoveryDoesNotExtendWindow) {
  PacketStore store;
  store.noteDirect(5);
  store.noteRecovered(10);  // spurious recovery outside window
  EXPECT_EQ(store.firstSeen(), 5);
  EXPECT_EQ(store.lastSeen(), 5);
}

TEST(PacketStoreTest, DuplicatesAreCounted) {
  PacketStore store;
  store.noteDirect(1);
  store.noteDirect(1);
  EXPECT_EQ(store.duplicateCount(), 1u);
  store.noteRecovered(1);  // already held directly
  EXPECT_EQ(store.duplicateCount(), 2u);
  store.noteRecovered(2);
  store.noteRecovered(2);
  EXPECT_EQ(store.duplicateCount(), 3u);
  EXPECT_EQ(store.directCount(), 1u);
  EXPECT_EQ(store.recoveredCount(), 1u);
}

TEST(PacketStoreTest, MissingInRangeForFileMode) {
  PacketStore store;
  store.noteDirect(2);
  store.noteRecovered(4);
  EXPECT_EQ(store.missingInRange(1, 5), (std::vector<SeqNo>{1, 3, 5}));
  EXPECT_TRUE(store.missingInRange(2, 2).empty());
}

TEST(PacketStoreTest, BufferingForOtherFlows) {
  PacketStore store;
  EXPECT_FALSE(store.hasBuffered(2, 1));
  store.buffer(2, 1, 1000);
  store.buffer(2, 5, 1000);
  store.buffer(3, 1, 500);
  EXPECT_TRUE(store.hasBuffered(2, 1));
  EXPECT_TRUE(store.hasBuffered(3, 1));
  EXPECT_FALSE(store.hasBuffered(2, 2));
  EXPECT_EQ(store.bufferedCount(), 3u);
  EXPECT_EQ(store.bufferedPayloadBytes(2), 1000);
  EXPECT_EQ(store.bufferedPayloadBytes(3), 500);
  EXPECT_EQ(store.bufferedPayloadBytes(9), 0);
}

TEST(PacketStoreTest, BufferingIsSeparateFromOwnFlow) {
  PacketStore store;
  store.buffer(2, 7, 1000);
  EXPECT_FALSE(store.hasOwn(7));
  EXPECT_TRUE(store.missingInWindow().empty());
}

TEST(PacketStoreTest, ContiguousWindowHasNoMissing) {
  PacketStore store;
  for (SeqNo s = 10; s <= 20; ++s) store.noteDirect(s);
  EXPECT_TRUE(store.missingInWindow().empty());
}

// Property: missing + held == full window, for random reception patterns.
class PacketStoreWindowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketStoreWindowProperty, PartitionInvariant) {
  Rng rng{GetParam()};
  PacketStore store;
  for (SeqNo s = 1; s <= 200; ++s) {
    if (rng.bernoulli(0.7)) store.noteDirect(s);
  }
  if (store.firstSeen() == 0) return;  // nothing received: nothing to check
  const auto missing = store.missingInWindow();
  std::size_t held = 0;
  for (SeqNo s = store.firstSeen(); s <= store.lastSeen(); ++s) {
    if (store.hasOwn(s)) ++held;
  }
  const auto windowSize =
      static_cast<std::size_t>(store.lastSeen() - store.firstSeen() + 1);
  EXPECT_EQ(held + missing.size(), windowSize);
  for (const SeqNo s : missing) {
    EXPECT_FALSE(store.hasOwn(s));
    EXPECT_GE(s, store.firstSeen());
    EXPECT_LE(s, store.lastSeen());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketStoreWindowProperty,
                         ::testing::Values(1ULL, 7ULL, 13ULL, 101ULL));

}  // namespace
}  // namespace vanet::carq
