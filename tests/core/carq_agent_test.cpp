#include "core/carq_agent.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../testing/scripted_link.h"
#include "mobility/mobility_model.h"
#include "net/node.h"

namespace vanet::carq {
namespace {

using mac::Frame;
using mac::FrameKind;
using sim::SimTime;
using vanet::testing::ScriptedLinkModel;

/// Fast protocol timing so tests run in milliseconds of simulated time.
CarqConfig fastConfig() {
  CarqConfig config;
  config.helloPeriod = SimTime::millis(200.0);
  config.receptionTimeout = SimTime::millis(600.0);
  config.coopSlot = SimTime::millis(12.0);
  config.requestGuard = SimTime::millis(4.0);
  config.unproductiveCycleBackoff = SimTime::millis(300.0);
  return config;
}

/// One AP radio driven by the test + N cars running real agents, all
/// parked within easy range of each other.
class AgentHarness {
 public:
  explicit AgentHarness(int carCount, const CarqConfig& config = fastConfig())
      : environment_(sim_, link_, Rng{77}.child("medium")),
        apMobility_(geom::Vec2{0.0, -10.0}),
        apNode_(sim_, environment_, kFirstApId, &apMobility_,
                mac::RadioConfig{18.0}, mac::MacConfig{}, Rng{78}) {
    for (int i = 0; i < carCount; ++i) {
      const NodeId id = static_cast<NodeId>(i + 1);
      carMobility_.push_back(std::make_unique<mobility::StaticMobility>(
          geom::Vec2{20.0 * static_cast<double>(i), 0.0}));
      cars_.push_back(std::make_unique<net::Node>(
          sim_, environment_, id, carMobility_.back().get(),
          mac::RadioConfig{18.0}, mac::MacConfig{},
          Rng{100}.child(static_cast<std::uint64_t>(id))));
      agents_.push_back(std::make_unique<CarqAgent>(
          *cars_.back(), config,
          Rng{200}.child(static_cast<std::uint64_t>(id))));
    }
  }

  void startAgents() {
    if (agentsStarted_) return;
    agentsStarted_ = true;
    for (auto& agent : agents_) agent->start();
  }

  /// Lets HELLOs circulate so cooperator tables are fully established.
  void establishCooperation() {
    startAgents();
    sim_.runUntil(std::max(sim_.now(), SimTime::seconds(1.0)));
  }

  /// AP broadcasts one data packet for `flow` through the MAC.
  void apSend(FlowId flow, SeqNo seq, int bytes = 1000) {
    Frame frame;
    frame.kind = FrameKind::kData;
    frame.src = kFirstApId;
    frame.bytes = bytes;
    frame.payload = mac::DataPayload{flow, seq, 0};
    apNode_.mac().enqueue(std::move(frame), channel::PhyMode::kDsss1Mbps);
  }

  sim::Simulator& sim() noexcept { return sim_; }
  ScriptedLinkModel& link() noexcept { return link_; }
  CarqAgent& agent(int car) { return *agents_.at(static_cast<std::size_t>(car - 1)); }

  void runFor(double seconds) {
    sim_.runUntil(sim_.now() + SimTime::seconds(seconds));
  }

 private:
  sim::Simulator sim_;
  ScriptedLinkModel link_;
  mac::RadioEnvironment environment_;
  mobility::StaticMobility apMobility_;
  net::Node apNode_;
  std::vector<std::unique_ptr<mobility::StaticMobility>> carMobility_;
  std::vector<std::unique_ptr<net::Node>> cars_;
  std::vector<std::unique_ptr<CarqAgent>> agents_;
  bool agentsStarted_ = false;
};

TEST(CarqAgentTest, StartsIdleAndAssociatesOnFirstPacket) {
  AgentHarness h(2);
  h.startAgents();
  EXPECT_EQ(h.agent(1).phase(), Phase::kIdle);
  bool entered = false;
  h.agent(1).hooks().onEnterReception = [&](NodeId, SimTime) { entered = true; };
  h.apSend(1, 1);
  h.runFor(0.1);
  EXPECT_EQ(h.agent(1).phase(), Phase::kReception);
  EXPECT_TRUE(entered);
  EXPECT_TRUE(h.agent(1).store().hasOwn(1));
}

TEST(CarqAgentTest, OtherFlowsAlsoTriggerAssociation) {
  // Paper: a node is associated from the first packet it receives from the
  // AP, whether addressed to it or not.
  AgentHarness h(2);
  h.startAgents();
  h.apSend(2, 1);
  h.runFor(0.1);
  EXPECT_EQ(h.agent(1).phase(), Phase::kReception);
  EXPECT_FALSE(h.agent(1).store().hasOwn(1));
}

TEST(CarqAgentTest, HellosEstablishMutualCooperation) {
  AgentHarness h(3);
  h.establishCooperation();
  for (int car = 1; car <= 3; ++car) {
    EXPECT_EQ(h.agent(car).table().myCooperators().size(), 2u) << car;
    EXPECT_GT(h.agent(car).counters().hellosSent, 2u);
  }
  EXPECT_TRUE(h.agent(1).table().considersMeCooperator(2));
  EXPECT_TRUE(h.agent(2).table().considersMeCooperator(1));
}

TEST(CarqAgentTest, BuffersOnlyWhenAnnouncedAsCooperator) {
  AgentHarness h(2);
  // No HELLO exchange: car 2 must not buffer car 1's packets.
  h.startAgents();
  h.sim().runUntil(SimTime::millis(20.0));  // before any HELLO lands
  h.apSend(1, 1);
  h.runFor(0.05);
  EXPECT_FALSE(h.agent(2).store().hasBuffered(1, 1));

  // After the HELLO exchange the same overheard packet is buffered.
  h.establishCooperation();
  h.apSend(1, 2);
  h.runFor(0.1);
  EXPECT_TRUE(h.agent(2).store().hasBuffered(1, 2));
  EXPECT_GE(h.agent(2).counters().dataOverheardBuffered, 1u);
}

TEST(CarqAgentTest, ReceptionTimeoutEntersCoopArq) {
  AgentHarness h(2);
  h.establishCooperation();
  bool coopEntered = false;
  h.agent(1).hooks().onEnterCoopArq = [&](SimTime) { coopEntered = true; };
  h.apSend(1, 1);
  h.runFor(0.1);
  EXPECT_EQ(h.agent(1).phase(), Phase::kReception);
  h.runFor(1.0);  // silence > receptionTimeout
  EXPECT_EQ(h.agent(1).phase(), Phase::kCoopArq);
  EXPECT_TRUE(coopEntered);
}

TEST(CarqAgentTest, TimeoutIsRestartedByEveryApPacket) {
  AgentHarness h(1);
  h.startAgents();
  h.apSend(1, 1);
  h.runFor(0.5);
  // Keep feeding packets every 0.4 s < timeout 0.6 s.
  for (int i = 2; i <= 4; ++i) {
    h.apSend(1, i);
    h.runFor(0.4);
  }
  EXPECT_EQ(h.agent(1).phase(), Phase::kReception);
  h.runFor(0.7);
  EXPECT_EQ(h.agent(1).phase(), Phase::kCoopArq);
}

TEST(CarqAgentTest, RecoversMissingPacketFromCooperator) {
  AgentHarness h(2);
  h.establishCooperation();
  // Car 1 misses seq 2; car 2 overhears everything.
  h.apSend(1, 1);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.apSend(1, 3);
  h.runFor(0.05);
  EXPECT_FALSE(h.agent(1).store().hasOwn(2));
  ASSERT_TRUE(h.agent(2).store().hasBuffered(1, 2));

  SeqNo recovered = 0;
  h.agent(1).hooks().onRecovered = [&](SeqNo seq, SimTime) { recovered = seq; };
  bool windowDone = false;
  h.agent(1).hooks().onWindowRecovered = [&](SimTime) { windowDone = true; };
  h.runFor(2.0);  // timeout + request/response
  EXPECT_EQ(h.agent(1).phase(), Phase::kCoopArq);
  EXPECT_TRUE(h.agent(1).store().hasOwn(2));
  EXPECT_EQ(recovered, 2);
  EXPECT_TRUE(windowDone);
  EXPECT_GE(h.agent(1).counters().requestsSent, 1u);
  EXPECT_GE(h.agent(1).counters().recovered, 1u);
  EXPECT_GE(h.agent(2).counters().requestsReceived, 1u);
  EXPECT_EQ(h.agent(2).counters().coopDataSent, 1u);
}

TEST(CarqAgentTest, LowerOrderCooperatorSuppressesHigherOrder) {
  AgentHarness h(3);
  h.establishCooperation();
  // Car 1 misses seq 2 (bracketed by received packets so the missing
  // packet lies inside its window); cars 2 and 3 both buffered it.
  h.apSend(1, 1);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.apSend(1, 3);
  h.runFor(0.05);
  ASSERT_TRUE(h.agent(2).store().hasBuffered(1, 2));
  ASSERT_TRUE(h.agent(3).store().hasBuffered(1, 2));
  h.runFor(2.0);
  EXPECT_TRUE(h.agent(1).store().hasOwn(2));
  // Exactly one cooperator transmitted; the other cancelled on overhear.
  const auto sent2 = h.agent(2).counters().coopDataSent;
  const auto sent3 = h.agent(3).counters().coopDataSent;
  EXPECT_EQ(sent2 + sent3, 1u);
  EXPECT_EQ(h.agent(2).counters().responsesSuppressed +
                h.agent(3).counters().responsesSuppressed,
            1u);
}

TEST(CarqAgentTest, ResponderOrderMatchesAnnouncedList) {
  AgentHarness h(3);
  h.establishCooperation();
  const auto& myList = h.agent(1).table().myCooperators();
  ASSERT_EQ(myList.size(), 2u);
  // The cooperator announced first must be the one that answers.
  const NodeId first = myList[0];
  h.apSend(1, 1);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.apSend(1, 3);
  h.runFor(0.05);
  h.runFor(2.0);
  const auto sentByFirst = h.agent(static_cast<int>(first)).counters().coopDataSent;
  EXPECT_EQ(sentByFirst, 1u);
}

TEST(CarqAgentTest, UnrecoverablePacketKeepsCycling) {
  AgentHarness h(2);
  h.establishCooperation();
  // Both cars miss seq 2: nobody can help (joint loss).
  h.apSend(1, 1);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1);
  h.link().dropNext(kFirstApId, 2);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.apSend(1, 3);
  h.runFor(0.05);
  h.runFor(3.0);
  EXPECT_FALSE(h.agent(1).store().hasOwn(2));
  EXPECT_GT(h.agent(1).counters().requestsSent, 1u);
  EXPECT_GT(h.agent(1).counters().cyclesCompleted, 0u);
  EXPECT_GT(h.agent(1).counters().unproductiveCycles, 0u);
  EXPECT_EQ(h.agent(1).phase(), Phase::kCoopArq);
}

TEST(CarqAgentTest, NewApPacketStopsRequestCycle) {
  AgentHarness h(2);
  h.establishCooperation();
  h.apSend(1, 1);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1);
  h.link().dropNext(kFirstApId, 2);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.apSend(1, 3);
  h.runFor(0.05);
  h.runFor(1.0);  // in CoopArq, cycling
  ASSERT_EQ(h.agent(1).phase(), Phase::kCoopArq);
  const auto requestsBefore = h.agent(1).counters().requestsSent;
  h.apSend(1, 4);  // "new AP" appears
  h.runFor(0.2);
  EXPECT_EQ(h.agent(1).phase(), Phase::kReception);
  h.runFor(0.3);  // still inside reception timeout: no new requests
  EXPECT_EQ(h.agent(1).counters().requestsSent, requestsBefore);
}

TEST(CarqAgentTest, CooperationDisabledIsPureBaseline) {
  CarqConfig config = fastConfig();
  config.cooperationEnabled = false;
  AgentHarness h(2, config);
  h.startAgents();
  h.sim().runUntil(SimTime::seconds(1.0));
  EXPECT_EQ(h.agent(1).counters().hellosSent, 0u);
  h.link().dropNext(kFirstApId, 1);
  h.apSend(1, 1);
  h.runFor(0.05);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.runFor(2.5);
  EXPECT_EQ(h.agent(1).counters().requestsSent, 0u);
  EXPECT_EQ(h.agent(2).counters().coopDataSent, 0u);
  EXPECT_FALSE(h.agent(2).store().hasBuffered(1, 1));
  EXPECT_FALSE(h.agent(1).store().hasOwn(1));
}

TEST(CarqAgentTest, BatchedRequestsRecoverMultiplePackets) {
  CarqConfig config = fastConfig();
  config.requestMode = RequestMode::kBatched;
  config.maxBatchSeqs = 8;
  AgentHarness h(2, config);
  h.establishCooperation();
  h.apSend(1, 1);
  h.runFor(0.05);
  for (SeqNo seq = 2; seq <= 5; ++seq) {
    h.link().dropNext(kFirstApId, 1);
    h.apSend(1, seq);
    h.runFor(0.05);
  }
  h.apSend(1, 6);
  h.runFor(0.05);
  h.runFor(2.5);
  for (SeqNo seq = 2; seq <= 5; ++seq) {
    EXPECT_TRUE(h.agent(1).store().hasOwn(seq)) << "seq " << seq;
  }
  // One batched REQUEST carried several seqs.
  EXPECT_LT(h.agent(1).counters().requestsSent,
            h.agent(1).counters().requestSeqsSent);
}

TEST(CarqAgentTest, PerPacketModeSendsOneSeqPerRequest) {
  AgentHarness h(2);
  h.establishCooperation();
  h.apSend(1, 1);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1);
  h.apSend(1, 3);
  h.runFor(0.05);
  h.apSend(1, 4);
  h.runFor(0.05);
  h.runFor(2.0);
  EXPECT_EQ(h.agent(1).counters().requestsSent,
            h.agent(1).counters().requestSeqsSent);
}

TEST(CarqAgentTest, FileModeCompletesAcrossWindow) {
  CarqConfig config = fastConfig();
  config.fileSizeSeqs = 5;
  AgentHarness h(2, config);
  h.establishCooperation();
  bool complete = false;
  h.agent(1).hooks().onFileComplete = [&](SimTime) { complete = true; };
  // Car 1 receives 1,3,5 directly; 2 and 4 only at car 2.
  for (SeqNo seq = 1; seq <= 5; ++seq) {
    if (seq % 2 == 0) h.link().dropNext(kFirstApId, 1);
    h.apSend(1, seq);
    h.runFor(0.05);
  }
  EXPECT_FALSE(complete);
  h.runFor(2.5);
  EXPECT_TRUE(complete);
  for (SeqNo seq = 1; seq <= 5; ++seq) {
    EXPECT_TRUE(h.agent(1).store().hasOwn(seq));
  }
}

TEST(CarqAgentTest, FileModeCompletesDirectlyWithoutLosses) {
  CarqConfig config = fastConfig();
  config.fileSizeSeqs = 3;
  AgentHarness h(1, config);
  h.startAgents();
  bool complete = false;
  h.agent(1).hooks().onFileComplete = [&](SimTime) { complete = true; };
  for (SeqNo seq = 1; seq <= 3; ++seq) {
    h.apSend(1, seq);
    h.runFor(0.05);
  }
  EXPECT_TRUE(complete);
}

TEST(CarqAgentTest, OverheardCoopDataBufferingIsOptional) {
  // Default off: a cooperator does not learn packets from CoopData frames.
  {
    AgentHarness h(3);
    h.establishCooperation();
    h.apSend(1, 1);
    h.runFor(0.05);
    h.link().dropNext(kFirstApId, 1);
    h.link().dropNext(kFirstApId, 3);  // car 3 misses it too
    h.apSend(1, 2);
    h.runFor(0.05);
    h.apSend(1, 3);
    h.runFor(0.05);
    h.runFor(2.0);
    EXPECT_TRUE(h.agent(1).store().hasOwn(2));  // car 2 helped
    EXPECT_FALSE(h.agent(3).store().hasBuffered(1, 2));
  }
  // Enabled: car 3 snoops the CoopData and buffers it.
  {
    CarqConfig config = fastConfig();
    config.bufferOverheardCoopData = true;
    AgentHarness h(3, config);
    h.establishCooperation();
    h.apSend(1, 1);
    h.runFor(0.05);
    h.link().dropNext(kFirstApId, 1);
    h.link().dropNext(kFirstApId, 3);
    h.apSend(1, 2);
    h.runFor(0.05);
    h.apSend(1, 3);
    h.runFor(0.05);
    h.runFor(2.0);
    EXPECT_TRUE(h.agent(1).store().hasOwn(2));
    EXPECT_TRUE(h.agent(3).store().hasBuffered(1, 2));
  }
}

TEST(CarqAgentTest, DuplicateCoopDataCountsAsDuplicate) {
  AgentHarness h(2);
  h.establishCooperation();
  h.apSend(1, 1);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.apSend(1, 3);
  h.runFor(0.05);
  // Drop car 2's first CoopData towards car 1? No -- let recovery work,
  // then force a second REQUEST by dropping the first response.
  h.link().dropNext(2, 1, 1, static_cast<int>(FrameKind::kCoopData));
  h.runFor(3.0);
  EXPECT_TRUE(h.agent(1).store().hasOwn(2));
  // Car 2 answered at least twice (first response lost at car 1).
  EXPECT_GE(h.agent(2).counters().coopDataSent, 2u);
}

TEST(CarqAgentTest, NothingMissingMeansNoRequests) {
  AgentHarness h(2);
  h.establishCooperation();
  bool windowDone = false;
  h.agent(1).hooks().onWindowRecovered = [&](SimTime) { windowDone = true; };
  for (SeqNo seq = 1; seq <= 4; ++seq) {
    h.apSend(1, seq);
    h.runFor(0.05);
  }
  h.runFor(1.5);
  EXPECT_EQ(h.agent(1).phase(), Phase::kCoopArq);
  EXPECT_EQ(h.agent(1).counters().requestsSent, 0u);
  EXPECT_TRUE(windowDone);
}


TEST(CarqAgentTest, WindowGossipExtendsRequestRange) {
  CarqConfig config = fastConfig();
  config.gossipWindowExtension = true;
  AgentHarness h(2, config);
  h.establishCooperation();
  // Car 1 hears seq 1 only; seqs 2 and 3 are transmitted after it "left
  // coverage" (dropped towards it) but car 2 buffers them.
  h.apSend(1, 1);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1, 2);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.apSend(1, 3);
  h.runFor(0.05);
  ASSERT_TRUE(h.agent(2).store().hasBuffered(1, 3));
  // Without gossip car 1 would have an empty missing window ([1,1]).
  h.runFor(3.0);  // timeout + gossip HELLOs + request cycle
  EXPECT_GE(h.agent(1).gossipedMaxSeq(), 3);
  EXPECT_TRUE(h.agent(1).store().hasOwn(2));
  EXPECT_TRUE(h.agent(1).store().hasOwn(3));
}

TEST(CarqAgentTest, WithoutGossipTailStaysUnknown) {
  AgentHarness h(2);  // gossip off (paper semantics)
  h.establishCooperation();
  h.apSend(1, 1);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1, 2);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.apSend(1, 3);
  h.runFor(0.05);
  h.runFor(3.0);
  // The paper's window rule: car 1 only knows [1, 1]; nothing to request.
  EXPECT_EQ(h.agent(1).gossipedMaxSeq(), 0);
  EXPECT_FALSE(h.agent(1).store().hasOwn(2));
  EXPECT_FALSE(h.agent(1).store().hasOwn(3));
  EXPECT_EQ(h.agent(1).counters().requestsSent, 0u);
}

TEST(CarqAgentTest, GossipLearnsLateDuringCoopArq) {
  // Gossip arriving while the request cycle already runs reloads the walk.
  CarqConfig config = fastConfig();
  config.gossipWindowExtension = true;
  config.helloPeriod = SimTime::millis(800.0);  // slow hellos: gossip lands late
  AgentHarness h(2, config);
  h.establishCooperation();
  h.apSend(1, 1);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1, 1);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1, 1);
  h.apSend(1, 3);
  h.runFor(0.05);
  h.runFor(4.0);
  EXPECT_TRUE(h.agent(1).store().hasOwn(2));
  EXPECT_TRUE(h.agent(1).store().hasOwn(3));
}

TEST(CarqAgentTest, GossipRestartsADormantRequestCycle) {
  // Ordering regression: the destination's own missing window is EMPTY
  // when it enters CoopArq (it heard only seq 1), so the request cycle
  // goes dormant immediately. Gossip then reveals seqs 2..3 exist; the
  // agent must restart the cycle, not just reload the scheduler.
  CarqConfig config = fastConfig();
  config.gossipWindowExtension = true;
  // Hellos far apart: the first gossip-bearing HELLO arrives well after
  // the (empty) CoopArq entry at ~0.6 s.
  config.helloPeriod = SimTime::seconds(2.0);
  config.helloJitterFraction = 0.01;
  AgentHarness h(2, config);
  h.startAgents();
  // Let the initial hello pair establish mutual cooperation.
  h.sim().runUntil(SimTime::seconds(2.5));
  ASSERT_TRUE(h.agent(2).table().considersMeCooperator(1));
  h.apSend(1, 1);
  h.runFor(0.05);
  h.link().dropNext(kFirstApId, 1, 2);
  h.apSend(1, 2);
  h.runFor(0.05);
  h.apSend(1, 3);
  h.runFor(0.05);
  // CoopArq entry at ~+0.6 s with an empty window [1,1]; the next HELLO
  // wave (~2 s period) brings the gossip afterwards.
  h.runFor(6.0);
  EXPECT_GE(h.agent(1).gossipedMaxSeq(), 3);
  EXPECT_TRUE(h.agent(1).store().hasOwn(2));
  EXPECT_TRUE(h.agent(1).store().hasOwn(3));
}

TEST(CarqAgentTest, PhaseNames) {
  EXPECT_STREQ(phaseName(Phase::kIdle), "Idle");
  EXPECT_STREQ(phaseName(Phase::kReception), "Reception");
  EXPECT_STREQ(phaseName(Phase::kCoopArq), "CoopArq");
}

}  // namespace
}  // namespace vanet::carq
