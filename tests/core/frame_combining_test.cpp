#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../testing/scripted_link.h"
#include "core/carq_agent.h"
#include "mobility/mobility_model.h"
#include "net/node.h"

namespace vanet::carq {
namespace {

using mac::Frame;
using mac::FrameKind;
using sim::SimTime;

/// Two cars with a *marginal* car-to-car link at CCK-11M: per-copy decode
/// probability ~0.2 (SINR ~14 dB against the ~14.6 dB cliff for 1044-byte
/// frames), while the AP link is clean. Chase combining should need far
/// fewer cooperator retransmissions to repair the same losses.
class MarginalLinkHarness {
 public:
  explicit MarginalLinkHarness(bool frameCombining, std::uint64_t seed)
      : link_(std::make_unique<channel::CompositeLinkModel>(
            std::make_unique<channel::LogDistancePathLoss>(2.0, 40.0),
            // c2c: 18 dBm - 66.8 - 24 log10(20 m) => ~ -80 dBm, SNR ~14 dB
            // against the ~14.6 dB decode cliff of 1044-byte CCK-11 frames.
            std::make_unique<channel::LogDistancePathLoss>(2.4, 66.8),
            std::make_unique<channel::NoShadowing>(),
            std::make_unique<channel::NoFading>(), channel::LinkBudget{})),
        environment_(sim_, link_, Rng{seed}.child("medium")),
        apMobility_(geom::Vec2{0.0, -10.0}),
        apNode_(sim_, environment_, kFirstApId, &apMobility_,
                mac::RadioConfig{18.0}, mac::MacConfig{}, Rng{seed}.child("ap")) {
    CarqConfig config;
    config.helloPeriod = SimTime::millis(200.0);
    config.receptionTimeout = SimTime::millis(600.0);
    config.coopSlot = SimTime::millis(4.0);
    config.unproductiveCycleBackoff = SimTime::millis(100.0);
    config.phyMode = channel::PhyMode::kCck11Mbps;
    config.frameCombining = frameCombining;
    for (int i = 0; i < 2; ++i) {
      const NodeId id = static_cast<NodeId>(i + 1);
      carMobility_.push_back(std::make_unique<mobility::StaticMobility>(
          geom::Vec2{20.0 * static_cast<double>(i), 0.0}));
      cars_.push_back(std::make_unique<net::Node>(
          sim_, environment_, id, carMobility_.back().get(),
          mac::RadioConfig{18.0}, mac::MacConfig{},
          Rng{seed + 10}.child(static_cast<std::uint64_t>(id))));
      agents_.push_back(std::make_unique<CarqAgent>(
          *cars_.back(), config,
          Rng{seed + 20}.child(static_cast<std::uint64_t>(id))));
    }
    for (auto& agent : agents_) agent->start();
    sim_.runUntil(SimTime::seconds(1.0));  // HELLO exchange
  }

  /// Sends seq 1 (heard by both), then seqs 2..1+missing heard only by
  /// car 2, then a final bracket packet; runs until the cycle settles.
  void runLossPattern(int missing) {
    apSend(1, 1);
    sim_.runUntil(sim_.now() + SimTime::millis(80.0));
    for (SeqNo seq = 2; seq <= 1 + missing; ++seq) {
      // The marginal link is car-to-car only; the AP link is clean, so
      // the misses at car 1 are scripted (they vanish without corrupt
      // copies, like an out-of-range AP frame would).
      link_.dropNext(kFirstApId, 1, 1,
                     static_cast<int>(FrameKind::kData));
      apSend(1, seq);
      sim_.runUntil(sim_.now() + SimTime::millis(80.0));
    }
    apSend(1, 2 + missing);
    sim_.runUntil(sim_.now() + SimTime::millis(80.0));
    sim_.runUntil(sim_.now() + SimTime::seconds(25.0));
  }

  CarqAgent& car(int id) { return *agents_.at(static_cast<std::size_t>(id - 1)); }

 private:
  void apSend(FlowId flow, SeqNo seq) {
    Frame frame;
    frame.kind = FrameKind::kData;
    frame.src = kFirstApId;
    frame.bytes = 1000;
    frame.payload = mac::DataPayload{flow, seq, 0};
    apNode_.mac().enqueue(std::move(frame), channel::PhyMode::kCck11Mbps);
  }

  sim::Simulator sim_;
  vanet::testing::ScriptedLinkModel link_;
  mac::RadioEnvironment environment_;
  mobility::StaticMobility apMobility_;
  net::Node apNode_;
  std::vector<std::unique_ptr<mobility::StaticMobility>> carMobility_;
  std::vector<std::unique_ptr<net::Node>> cars_;
  std::vector<std::unique_ptr<CarqAgent>> agents_;
};

TEST(FrameCombiningTest, CombiningDecodesWithFewerRetransmissions) {
  const int missing = 6;
  std::uint64_t plainResponses = 0;
  std::uint64_t combiningResponses = 0;
  std::uint64_t combinedDecodes = 0;
  int plainRecovered = 0;
  int combiningRecovered = 0;
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    {
      MarginalLinkHarness harness(false, seed);
      harness.runLossPattern(missing);
      plainResponses += harness.car(2).counters().coopDataSent;
      plainRecovered += static_cast<int>(harness.car(1).counters().recovered);
    }
    {
      MarginalLinkHarness harness(true, seed);
      harness.runLossPattern(missing);
      combiningResponses += harness.car(2).counters().coopDataSent;
      combiningRecovered +=
          static_cast<int>(harness.car(1).counters().recovered);
      combinedDecodes += harness.car(1).counters().softCombinedDecodes;
    }
  }
  // Both repair everything eventually (the cycle keeps retrying)...
  EXPECT_EQ(plainRecovered, 3 * missing);
  EXPECT_EQ(combiningRecovered, 3 * missing);
  // ...but combining turns failed copies into progress.
  EXPECT_GT(combinedDecodes, 0u);
  EXPECT_LT(combiningResponses, plainResponses);
}

TEST(FrameCombiningTest, CombiningOffHearsNoCorruptFrames) {
  MarginalLinkHarness harness(false, 7);
  harness.runLossPattern(2);
  EXPECT_EQ(harness.car(1).counters().corruptCopiesHeard, 0u);
  EXPECT_EQ(harness.car(1).counters().softCombinedDecodes, 0u);
}

TEST(FrameCombiningTest, CombiningCountsCorruptCopies) {
  MarginalLinkHarness harness(true, 7);
  harness.runLossPattern(2);
  EXPECT_GT(harness.car(1).counters().corruptCopiesHeard, 0u);
}

}  // namespace
}  // namespace vanet::carq
