#include "core/request_scheduler.h"

#include <gtest/gtest.h>

namespace vanet::carq {
namespace {

TEST(RequestSchedulerTest, EmptyHasNoRequests) {
  RequestScheduler scheduler(RequestMode::kPerPacket, 1);
  EXPECT_TRUE(scheduler.empty());
  EXPECT_FALSE(scheduler.next().has_value());
}

TEST(RequestSchedulerTest, PerPacketWalksOneAtATime) {
  RequestScheduler scheduler(RequestMode::kPerPacket, 1);
  scheduler.loadMissing({4, 7, 9});
  const auto r1 = scheduler.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->seqs, (std::vector<SeqNo>{4}));
  EXPECT_FALSE(r1->wrapped);
  EXPECT_EQ(scheduler.next()->seqs, (std::vector<SeqNo>{7}));
  EXPECT_EQ(scheduler.next()->seqs, (std::vector<SeqNo>{9}));
}

TEST(RequestSchedulerTest, WrapsToHeadOfUpdatedList) {
  // Paper §3.3: when the end of the missing list is reached, start again
  // from the beginning of the actualised (shorter) list.
  RequestScheduler scheduler(RequestMode::kPerPacket, 1);
  scheduler.loadMissing({1, 2, 3});
  scheduler.next();  // 1
  scheduler.next();  // 2
  scheduler.markRecovered(2);
  scheduler.next();  // 3
  const auto wrapped = scheduler.next();
  ASSERT_TRUE(wrapped.has_value());
  EXPECT_TRUE(wrapped->wrapped);
  EXPECT_EQ(wrapped->seqs, (std::vector<SeqNo>{1}));  // 2 is gone
  EXPECT_EQ(scheduler.pendingCount(), 2u);
}

TEST(RequestSchedulerTest, RecoveryBeforeCursorKeepsPosition) {
  RequestScheduler scheduler(RequestMode::kPerPacket, 1);
  scheduler.loadMissing({1, 2, 3, 4});
  scheduler.next();  // 1
  scheduler.next();  // 2
  scheduler.markRecovered(1);  // before the cursor
  EXPECT_EQ(scheduler.next()->seqs, (std::vector<SeqNo>{3}));
  EXPECT_EQ(scheduler.next()->seqs, (std::vector<SeqNo>{4}));
}

TEST(RequestSchedulerTest, RecoveryAtCursorSkipsCleanly) {
  RequestScheduler scheduler(RequestMode::kPerPacket, 1);
  scheduler.loadMissing({1, 2, 3});
  scheduler.next();            // 1
  scheduler.markRecovered(2);  // the element the cursor points at
  EXPECT_EQ(scheduler.next()->seqs, (std::vector<SeqNo>{3}));
}

TEST(RequestSchedulerTest, AllRecoveredEndsWalk) {
  RequestScheduler scheduler(RequestMode::kPerPacket, 1);
  scheduler.loadMissing({5, 6});
  scheduler.markRecovered(5);
  scheduler.markRecovered(6);
  EXPECT_TRUE(scheduler.empty());
  EXPECT_FALSE(scheduler.next().has_value());
}

TEST(RequestSchedulerTest, MarkUnknownSeqIsNoop) {
  RequestScheduler scheduler(RequestMode::kPerPacket, 1);
  scheduler.loadMissing({1});
  scheduler.markRecovered(42);
  EXPECT_EQ(scheduler.pendingCount(), 1u);
}

TEST(RequestSchedulerTest, BatchedTakesUpToMax) {
  RequestScheduler scheduler(RequestMode::kBatched, 3);
  scheduler.loadMissing({1, 2, 3, 4, 5});
  EXPECT_EQ(scheduler.next()->seqs, (std::vector<SeqNo>{1, 2, 3}));
  EXPECT_EQ(scheduler.next()->seqs, (std::vector<SeqNo>{4, 5}));
  const auto wrapped = scheduler.next();
  EXPECT_TRUE(wrapped->wrapped);
  EXPECT_EQ(wrapped->seqs, (std::vector<SeqNo>{1, 2, 3}));
}

TEST(RequestSchedulerTest, BatchedSingleRequestWhenSmall) {
  RequestScheduler scheduler(RequestMode::kBatched, 32);
  scheduler.loadMissing({7, 9});
  EXPECT_EQ(scheduler.next()->seqs, (std::vector<SeqNo>{7, 9}));
}

TEST(RequestSchedulerTest, RecoveredSinceWrapCounter) {
  RequestScheduler scheduler(RequestMode::kPerPacket, 1);
  scheduler.loadMissing({1, 2, 3});
  EXPECT_EQ(scheduler.recoveredSinceWrap(), 0);
  scheduler.next();
  scheduler.markRecovered(1);
  EXPECT_EQ(scheduler.recoveredSinceWrap(), 1);
  scheduler.next();  // 2
  scheduler.next();  // 3
  const auto wrapped = scheduler.next();  // wrap resets the counter
  EXPECT_TRUE(wrapped->wrapped);
  EXPECT_EQ(scheduler.recoveredSinceWrap(), 0);
}

TEST(RequestSchedulerTest, LoadMissingResetsState) {
  RequestScheduler scheduler(RequestMode::kPerPacket, 1);
  scheduler.loadMissing({1, 2});
  scheduler.next();
  scheduler.loadMissing({8, 9});
  const auto r = scheduler.next();
  EXPECT_EQ(r->seqs, (std::vector<SeqNo>{8}));
  EXPECT_FALSE(r->wrapped);
}

TEST(RequestSchedulerDeathTest, RejectsZeroBatch) {
  EXPECT_DEATH(RequestScheduler(RequestMode::kBatched, 0), "at least 1");
}

}  // namespace
}  // namespace vanet::carq
