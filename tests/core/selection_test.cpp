#include "core/selection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/cooperator_table.h"

namespace vanet::carq {
namespace {

PeerMap peersWithRssi(
    std::initializer_list<std::pair<NodeId, double>> list) {
  PeerMap peers;
  for (const auto& [id, rssi] : list) {
    PeerInfo info;
    info.emaRssiDbm = rssi;
    info.helloCount = 1;
    peers[id] = info;
  }
  return peers;
}

TEST(SelectionTest, AllOneHopKeepsOrderAndIgnoresCap) {
  const auto peers = peersWithRssi({{2, -50}, {3, -60}, {4, -70}});
  Rng rng{1};
  const auto out = selectCooperators(SelectionPolicy::kAllOneHop, peers,
                                     {4, 2, 3}, 1, rng);
  EXPECT_EQ(out, (std::vector<NodeId>{4, 2, 3}));
}

TEST(SelectionTest, VanishedPeersAreDropped) {
  const auto peers = peersWithRssi({{2, -50}});
  Rng rng{1};
  const auto out = selectCooperators(SelectionPolicy::kAllOneHop, peers,
                                     {9, 2, 8}, 8, rng);
  EXPECT_EQ(out, (std::vector<NodeId>{2}));
}

TEST(SelectionTest, BestRssiSortsStrongestFirst) {
  const auto peers = peersWithRssi({{2, -80}, {3, -50}, {4, -65}});
  Rng rng{1};
  const auto out = selectCooperators(SelectionPolicy::kBestRssi, peers,
                                     {2, 3, 4}, 8, rng);
  EXPECT_EQ(out, (std::vector<NodeId>{3, 4, 2}));
}

TEST(SelectionTest, BestRssiCapsAtMax) {
  const auto peers =
      peersWithRssi({{2, -80}, {3, -50}, {4, -65}, {5, -55}});
  Rng rng{1};
  const auto out = selectCooperators(SelectionPolicy::kBestRssi, peers,
                                     {2, 3, 4, 5}, 2, rng);
  EXPECT_EQ(out, (std::vector<NodeId>{3, 5}));
}

TEST(SelectionTest, RandomKRespectsCapAndMembership) {
  const auto peers =
      peersWithRssi({{2, -50}, {3, -50}, {4, -50}, {5, -50}, {6, -50}});
  Rng rng{7};
  const auto out = selectCooperators(SelectionPolicy::kRandomK, peers,
                                     {2, 3, 4, 5, 6}, 3, rng);
  EXPECT_EQ(out.size(), 3u);
  for (const NodeId id : out) {
    EXPECT_TRUE(peers.count(id) > 0);
  }
  // No duplicates.
  auto sorted = out;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(SelectionTest, RandomKVariesAcrossDraws) {
  const auto peers =
      peersWithRssi({{2, -50}, {3, -50}, {4, -50}, {5, -50}, {6, -50}});
  Rng rng{11};
  std::set<std::vector<NodeId>> outcomes;
  for (int i = 0; i < 20; ++i) {
    outcomes.insert(selectCooperators(SelectionPolicy::kRandomK, peers,
                                      {2, 3, 4, 5, 6}, 3, rng));
  }
  EXPECT_GT(outcomes.size(), 3u);
}

TEST(SelectionTest, EmptyPeersGiveEmptyList) {
  Rng rng{1};
  for (const auto policy :
       {SelectionPolicy::kAllOneHop, SelectionPolicy::kBestRssi,
        SelectionPolicy::kRandomK}) {
    EXPECT_TRUE(selectCooperators(policy, {}, {2, 3}, 4, rng).empty());
  }
}

TEST(SelectionTest, StableSortPreservesTiesByFirstHeard) {
  const auto peers = peersWithRssi({{2, -60}, {3, -60}, {4, -60}});
  Rng rng{1};
  const auto out = selectCooperators(SelectionPolicy::kBestRssi, peers,
                                     {4, 2, 3}, 8, rng);
  EXPECT_EQ(out, (std::vector<NodeId>{4, 2, 3}));
}

}  // namespace
}  // namespace vanet::carq
