#include "core/cooperator_table.h"

#include <gtest/gtest.h>

namespace vanet::carq {
namespace {

using sim::SimTime;

TEST(CooperatorTableTest, HelloAddsSenderAsCooperator) {
  CooperatorTable table(1);
  EXPECT_TRUE(table.onHello(2, {}, -60.0, SimTime::zero()));
  EXPECT_EQ(table.myCooperators(), (std::vector<NodeId>{2}));
}

TEST(CooperatorTableTest, RepeatedHelloDoesNotDuplicate) {
  CooperatorTable table(1);
  EXPECT_TRUE(table.onHello(2, {}, -60.0, SimTime::zero()));
  EXPECT_FALSE(table.onHello(2, {}, -61.0, SimTime::seconds(1.0)));
  EXPECT_EQ(table.myCooperators().size(), 1u);
}

TEST(CooperatorTableTest, FirstHeardOrderIsPreserved) {
  CooperatorTable table(1);
  table.onHello(3, {}, -60.0, SimTime::zero());
  table.onHello(2, {}, -50.0, SimTime::seconds(0.5));
  table.onHello(4, {}, -40.0, SimTime::seconds(1.0));
  EXPECT_EQ(table.myCooperators(), (std::vector<NodeId>{3, 2, 4}));
}

TEST(CooperatorTableTest, MyOrderForFollowsAnnouncedList) {
  CooperatorTable table(2);
  // Node 1 announces cooperators [3, 2]: my (id 2) order is 1.
  table.onHello(1, {3, 2}, -55.0, SimTime::zero());
  ASSERT_TRUE(table.myOrderFor(1).has_value());
  EXPECT_EQ(*table.myOrderFor(1), 1);
  EXPECT_TRUE(table.considersMeCooperator(1));
}

TEST(CooperatorTableTest, NotAnnouncedMeansNoOrder) {
  CooperatorTable table(2);
  table.onHello(1, {3, 4}, -55.0, SimTime::zero());
  EXPECT_FALSE(table.myOrderFor(1).has_value());
  EXPECT_FALSE(table.considersMeCooperator(1));
}

TEST(CooperatorTableTest, UnknownPeerHasNoOrder) {
  CooperatorTable table(2);
  EXPECT_FALSE(table.myOrderFor(99).has_value());
}

TEST(CooperatorTableTest, AnnouncementUpdatesReplaceOldList) {
  CooperatorTable table(2);
  table.onHello(1, {2}, -55.0, SimTime::zero());
  EXPECT_EQ(*table.myOrderFor(1), 0);
  table.onHello(1, {3, 2}, -55.0, SimTime::seconds(1.0));
  EXPECT_EQ(*table.myOrderFor(1), 1);
  table.onHello(1, {3}, -55.0, SimTime::seconds(2.0));
  EXPECT_FALSE(table.myOrderFor(1).has_value());
}

TEST(CooperatorTableTest, RssiSmoothingTracksSamples) {
  CooperatorTable table(1);
  table.onHello(2, {}, -60.0, SimTime::zero());
  EXPECT_DOUBLE_EQ(table.peers().at(2).emaRssiDbm, -60.0);
  table.onHello(2, {}, -40.0, SimTime::seconds(1.0));
  const double ema = table.peers().at(2).emaRssiDbm;
  EXPECT_GT(ema, -60.0);
  EXPECT_LT(ema, -40.0);
}

TEST(CooperatorTableTest, PeerBookkeeping) {
  CooperatorTable table(1);
  table.onHello(2, {1}, -60.0, SimTime::seconds(3.0));
  table.onHello(2, {1, 3}, -58.0, SimTime::seconds(4.0));
  const PeerInfo& peer = table.peers().at(2);
  EXPECT_EQ(peer.helloCount, 2);
  EXPECT_EQ(peer.lastHeard, SimTime::seconds(4.0));
  EXPECT_EQ(peer.announced, (std::vector<NodeId>{1, 3}));
}

TEST(CooperatorTableTest, MutualCooperationViaHelloExchange) {
  // The paper's two-step handshake: y hears x's HELLO, adds x; y's next
  // HELLO lists x; x then knows it must buffer for y.
  CooperatorTable tableX(1);
  CooperatorTable tableY(2);
  // x broadcasts HELLO (empty list); y processes it.
  tableY.onHello(1, {}, -50.0, SimTime::zero());
  EXPECT_EQ(tableY.myCooperators(), (std::vector<NodeId>{1}));
  // y broadcasts HELLO announcing [1]; x processes it.
  tableX.onHello(2, tableY.myCooperators(), -50.0, SimTime::seconds(0.5));
  EXPECT_TRUE(tableX.considersMeCooperator(2));
  EXPECT_EQ(*tableX.myOrderFor(2), 0);
}

TEST(CooperatorTableTest, SelectionAllOneHopKeepsEverything) {
  CooperatorTable table(1);
  for (NodeId id = 2; id <= 12; ++id) {
    table.onHello(id, {}, -60.0, SimTime::zero());
  }
  Rng rng{1};
  table.applySelection(SelectionPolicy::kAllOneHop, 4, rng);
  EXPECT_EQ(table.myCooperators().size(), 11u);  // unbounded like the paper
}

TEST(CooperatorTableTest, SelectionBestRssiCapsAndSorts) {
  CooperatorTable table(1);
  table.onHello(2, {}, -80.0, SimTime::zero());
  table.onHello(3, {}, -50.0, SimTime::zero());
  table.onHello(4, {}, -65.0, SimTime::zero());
  Rng rng{1};
  table.applySelection(SelectionPolicy::kBestRssi, 2, rng);
  EXPECT_EQ(table.myCooperators(), (std::vector<NodeId>{3, 4}));
}

TEST(CooperatorTableDeathTest, RejectsOwnHello) {
  CooperatorTable table(1);
  EXPECT_DEATH(table.onHello(1, {}, -50.0, SimTime::zero()), "own HELLO");
}

}  // namespace
}  // namespace vanet::carq
