#include "channel/gilbert_elliott.h"

#include <gtest/gtest.h>

namespace vanet::channel {
namespace {

using sim::SimTime;

TEST(GilbertElliottTest, StationaryLossFormula) {
  GilbertElliottParams params;
  params.meanGoodSeconds = 4.0;
  params.meanBadSeconds = 1.0;
  params.lossInGood = 0.0;
  params.lossInBad = 1.0;
  EXPECT_NEAR(GilbertElliott::stationaryLoss(params), 0.2, 1e-12);

  params.lossInGood = 0.1;
  params.lossInBad = 0.5;
  EXPECT_NEAR(GilbertElliott::stationaryLoss(params), (4.0 * 0.1 + 0.5) / 5.0,
              1e-12);
}

TEST(GilbertElliottTest, AllGoodNeverLoses) {
  GilbertElliottParams params;
  params.lossInGood = 0.0;
  params.lossInBad = 0.0;
  GilbertElliott chain(params, Rng{1});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(chain.loseFrame(SimTime::millis(i * 10.0)));
  }
}

TEST(GilbertElliottTest, EmpiricalLossMatchesStationary) {
  GilbertElliottParams params;
  params.meanGoodSeconds = 2.0;
  params.meanBadSeconds = 0.5;
  params.lossInGood = 0.02;
  params.lossInBad = 0.8;
  int losses = 0;
  const int framesPerChain = 2000;
  const int chains = 50;
  for (std::uint64_t seed = 0; seed < chains; ++seed) {
    GilbertElliott chain(params, Rng{seed});
    for (int i = 0; i < framesPerChain; ++i) {
      if (chain.loseFrame(SimTime::millis(i * 20.0))) ++losses;
    }
  }
  const double empirical =
      static_cast<double>(losses) / (framesPerChain * chains);
  EXPECT_NEAR(empirical, GilbertElliott::stationaryLoss(params), 0.02);
}

TEST(GilbertElliottTest, LossesAreBursty) {
  // Consecutive-frame loss correlation must exceed the i.i.d. baseline.
  GilbertElliottParams params;
  params.meanGoodSeconds = 1.0;
  params.meanBadSeconds = 0.3;
  params.lossInGood = 0.0;
  params.lossInBad = 1.0;
  int lossPairs = 0;
  int losses = 0;
  const int n = 50000;
  GilbertElliott chain(params, Rng{9});
  bool prevLost = false;
  for (int i = 0; i < n; ++i) {
    const bool lost = chain.loseFrame(SimTime::millis(i * 5.0));
    if (lost) ++losses;
    if (lost && prevLost) ++lossPairs;
    prevLost = lost;
  }
  const double pLoss = static_cast<double>(losses) / n;
  const double pPairGivenLoss =
      losses > 0 ? static_cast<double>(lossPairs) / losses : 0.0;
  EXPECT_GT(pPairGivenLoss, 2.0 * pLoss);  // strongly bursty
}

TEST(GilbertElliottTest, StateAdvancesWithTime) {
  GilbertElliottParams params;
  params.meanGoodSeconds = 0.1;
  params.meanBadSeconds = 0.1;
  params.lossInBad = 1.0;
  GilbertElliott chain(params, Rng{3});
  // Sample over a long horizon: both states must be visited.
  bool sawGood = false;
  bool sawBad = false;
  for (int i = 0; i < 1000; ++i) {
    chain.loseFrame(SimTime::millis(i * 50.0));
    if (chain.state() == GilbertElliott::State::kGood) sawGood = true;
    if (chain.state() == GilbertElliott::State::kBad) sawBad = true;
  }
  EXPECT_TRUE(sawGood);
  EXPECT_TRUE(sawBad);
}

TEST(GilbertElliottTest, DeterministicPerSeed) {
  GilbertElliottParams params;
  params.lossInBad = 0.7;
  params.lossInGood = 0.05;
  GilbertElliott a(params, Rng{42});
  GilbertElliott b(params, Rng{42});
  for (int i = 0; i < 500; ++i) {
    const SimTime t = SimTime::millis(i * 13.0);
    EXPECT_EQ(a.loseFrame(t), b.loseFrame(t));
  }
}

}  // namespace
}  // namespace vanet::channel
