#include "channel/error_model.h"

#include <gtest/gtest.h>

#include <vector>

namespace vanet::channel {
namespace {

const std::vector<PhyMode> kAllModes = {
    PhyMode::kDsss1Mbps,    PhyMode::kDsss2Mbps,   PhyMode::kCck5_5Mbps,
    PhyMode::kCck11Mbps,    PhyMode::kErpOfdm6Mbps, PhyMode::kErpOfdm12Mbps,
    PhyMode::kErpOfdm24Mbps, PhyMode::kErpOfdm54Mbps};

TEST(ErrorModelTest, Bitrates) {
  EXPECT_DOUBLE_EQ(bitrateMbps(PhyMode::kDsss1Mbps), 1.0);
  EXPECT_DOUBLE_EQ(bitrateMbps(PhyMode::kDsss2Mbps), 2.0);
  EXPECT_DOUBLE_EQ(bitrateMbps(PhyMode::kCck11Mbps), 11.0);
  EXPECT_DOUBLE_EQ(bitrateMbps(PhyMode::kErpOfdm54Mbps), 54.0);
}

TEST(ErrorModelTest, ModeNamesAreDistinct) {
  std::set<std::string_view> names;
  for (const PhyMode mode : kAllModes) {
    names.insert(modeName(mode));
  }
  EXPECT_EQ(names.size(), kAllModes.size());
}

TEST(ErrorModelTest, BerDecreasesWithSnr) {
  for (const PhyMode mode : kAllModes) {
    double prev = bitErrorRate(mode, -10.0);
    for (double snr = -8.0; snr <= 30.0; snr += 2.0) {
      const double ber = bitErrorRate(mode, snr);
      EXPECT_LE(ber, prev + 1e-12) << modeName(mode) << " at " << snr;
      prev = ber;
    }
  }
}

TEST(ErrorModelTest, BerBounded) {
  for (const PhyMode mode : kAllModes) {
    for (double snr = -30.0; snr <= 40.0; snr += 1.0) {
      const double ber = bitErrorRate(mode, snr);
      EXPECT_GE(ber, 0.0);
      EXPECT_LE(ber, 0.5 + 1e-12);
    }
  }
}

TEST(ErrorModelTest, HighSnrDecodesCleanly) {
  // 1000-byte frame at 20 dB SNR must be essentially loss-free at 1 Mbps.
  EXPECT_GT(frameSuccessProbability(PhyMode::kDsss1Mbps, 20.0, 8000), 0.999);
}

TEST(ErrorModelTest, VeryLowSnrFails) {
  EXPECT_LT(frameSuccessProbability(PhyMode::kDsss1Mbps, -15.0, 8000), 0.01);
}

TEST(ErrorModelTest, RobustModeOutperformsFastMode) {
  // At the same SNR the 1 Mbps DSSS mode must beat 54 Mbps OFDM.
  for (double snr = 0.0; snr <= 20.0; snr += 2.0) {
    EXPECT_GE(frameSuccessProbability(PhyMode::kDsss1Mbps, snr, 8000),
              frameSuccessProbability(PhyMode::kErpOfdm54Mbps, snr, 8000));
  }
}

TEST(ErrorModelTest, LongerFramesFailMore) {
  for (const PhyMode mode : kAllModes) {
    const double snr = 3.0;
    EXPECT_GE(frameSuccessProbability(mode, snr, 400),
              frameSuccessProbability(mode, snr, 8000))
        << modeName(mode);
  }
}

TEST(ErrorModelTest, SuccessProbabilityIsProbability) {
  for (const PhyMode mode : kAllModes) {
    for (double snr = -20.0; snr <= 30.0; snr += 5.0) {
      const double p = frameSuccessProbability(mode, snr, 8224);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(ErrorModelTest, SuccessMonotoneInSnrProperty) {
  for (const PhyMode mode : kAllModes) {
    double prev = 0.0;
    for (double snr = -20.0; snr <= 30.0; snr += 0.5) {
      const double p = frameSuccessProbability(mode, snr, 8224);
      EXPECT_GE(p, prev - 1e-12) << modeName(mode) << " at " << snr;
      prev = p;
    }
  }
}

TEST(ErrorModelTest, NoUnderflowForHugeFrames) {
  const double p =
      frameSuccessProbability(PhyMode::kDsss1Mbps, -30.0, 1 << 20);
  EXPECT_GE(p, 0.0);
  EXPECT_LT(p, 1e-9);
}

TEST(ErrorModelTest, BatchMatchesScalarBitForBit) {
  // The batched BER->PER chain runs the same vmath kernel and glue-op
  // sequence per element as the scalar frameSuccessProbability; every mode
  // across the whole SNR sweep must agree exactly, including the
  // saturated p == 1.0 and p == 0.0 ends.
  std::vector<double> sinr;
  for (double s = -40.0; s <= 60.0; s += 0.25) sinr.push_back(s);
  std::vector<double> batch(sinr.size());
  for (PhyMode mode : kAllModes) {
    for (int bits : {1, 368, 8224, 1 << 20}) {
      frameSuccessProbabilityBatch(mode, sinr.data(), bits, batch.data(),
                                   sinr.size());
      for (std::size_t i = 0; i < sinr.size(); ++i) {
        EXPECT_EQ(batch[i], frameSuccessProbability(mode, sinr[i], bits))
            << modeName(mode) << " at " << sinr[i] << " dB, " << bits
            << " bits";
      }
    }
  }
}

TEST(ErrorModelTest, BatchAllowsExactAliasing) {
  std::vector<double> buf = {-10.0, 0.0, 5.0, 12.0, 25.0};
  std::vector<double> expected(buf.size());
  frameSuccessProbabilityBatch(PhyMode::kCck11Mbps, buf.data(), 8224,
                               expected.data(), buf.size());
  frameSuccessProbabilityBatch(PhyMode::kCck11Mbps, buf.data(), 8224,
                               buf.data(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], expected[i]);
  }
}

}  // namespace
}  // namespace vanet::channel
