#include "channel/propagation.h"

#include <gtest/gtest.h>

namespace vanet::channel {
namespace {

TEST(FreeSpaceTest, KnownValueAt2_4GHz) {
  const FreeSpacePathLoss model(2.4e9);
  // FSPL(1 m, 2.4 GHz) ~ 40.05 dB.
  EXPECT_NEAR(model.lossDb(1.0), 40.05, 0.1);
  // +20 dB per decade.
  EXPECT_NEAR(model.lossDb(10.0) - model.lossDb(1.0), 20.0, 1e-9);
  EXPECT_NEAR(model.lossDb(100.0), 80.05, 0.1);
}

TEST(FreeSpaceTest, ClampsBelowOneMetre) {
  const FreeSpacePathLoss model(2.4e9);
  EXPECT_DOUBLE_EQ(model.lossDb(0.0), model.lossDb(1.0));
  EXPECT_DOUBLE_EQ(model.lossDb(0.5), model.lossDb(1.0));
}

TEST(LogDistanceTest, ReferenceAndSlope) {
  const LogDistancePathLoss model(3.0, 46.0, 1.0);
  EXPECT_DOUBLE_EQ(model.lossDb(1.0), 46.0);
  EXPECT_NEAR(model.lossDb(10.0), 46.0 + 30.0, 1e-9);
  EXPECT_NEAR(model.lossDb(100.0), 46.0 + 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(model.exponent(), 3.0);
}

TEST(LogDistanceTest, CustomReferenceDistance) {
  const LogDistancePathLoss model(2.0, 60.0, 10.0);
  EXPECT_DOUBLE_EQ(model.lossDb(10.0), 60.0);
  EXPECT_NEAR(model.lossDb(100.0), 80.0, 1e-9);
}

TEST(TwoRayTest, FreeSpaceBeforeCrossover) {
  const TwoRayGroundPathLoss model(10.0, 1.5, 2.4e9);
  const FreeSpacePathLoss freeSpace(2.4e9);
  const double crossover = model.crossoverDistance();
  EXPECT_GT(crossover, 100.0);
  EXPECT_DOUBLE_EQ(model.lossDb(crossover * 0.5),
                   freeSpace.lossDb(crossover * 0.5));
}

TEST(TwoRayTest, FortyDbPerDecadeBeyondCrossover) {
  const TwoRayGroundPathLoss model(10.0, 1.5, 2.4e9);
  const double d = model.crossoverDistance() * 2.0;
  EXPECT_NEAR(model.lossDb(d * 10.0) - model.lossDb(d), 40.0, 1e-9);
}

// Monotonicity property across all models and a distance sweep.
class PathLossMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PathLossMonotoneTest, LossNeverDecreasesWithDistance) {
  std::unique_ptr<PathLossModel> model;
  switch (GetParam()) {
    case 0:
      model = std::make_unique<FreeSpacePathLoss>(2.4e9);
      break;
    case 1:
      model = std::make_unique<LogDistancePathLoss>(2.7, 46.0);
      break;
    default:
      model = std::make_unique<TwoRayGroundPathLoss>(10.0, 1.5, 2.4e9);
      break;
  }
  double prev = model->lossDb(1.0);
  for (double d = 2.0; d < 5000.0; d *= 1.3) {
    const double loss = model->lossDb(d);
    EXPECT_GE(loss, prev - 1e-9) << "distance " << d;
    prev = loss;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, PathLossMonotoneTest,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace vanet::channel
