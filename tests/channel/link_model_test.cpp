#include "channel/link_model.h"

#include <gtest/gtest.h>

#include <memory>

namespace vanet::channel {
namespace {

constexpr NodeId kCarA = 1;
constexpr NodeId kCarB = 2;
constexpr NodeId kAp = kFirstApId;

std::unique_ptr<CompositeLinkModel> makeModel(
    double infraExponent = 2.2, double infraRef = 70.0,
    double c2cExponent = 2.4, double c2cRef = 40.0) {
  return std::make_unique<CompositeLinkModel>(
      std::make_unique<LogDistancePathLoss>(infraExponent, infraRef),
      std::make_unique<LogDistancePathLoss>(c2cExponent, c2cRef),
      std::make_unique<NoShadowing>(), std::make_unique<NoFading>(),
      LinkBudget{});
}

TEST(CompositeLinkModelTest, InfraAndC2cUseDifferentPathLoss) {
  auto model = makeModel();
  const geom::Vec2 a{0.0, 0.0};
  const geom::Vec2 b{10.0, 0.0};
  const double infra = model->meanRxPowerDbm(kAp, a, 18.0, kCarA, b);
  const double c2c = model->meanRxPowerDbm(kCarA, a, 18.0, kCarB, b);
  // Infra: 18 - (70 + 22) = -74; C2C: 18 - (40 + 24) = -46.
  EXPECT_NEAR(infra, -74.0, 1e-9);
  EXPECT_NEAR(c2c, -46.0, 1e-9);
}

TEST(CompositeLinkModelTest, InfraAppliesWhenEitherEndpointIsAp) {
  auto model = makeModel();
  const geom::Vec2 a{0.0, 0.0};
  const geom::Vec2 b{10.0, 0.0};
  EXPECT_DOUBLE_EQ(model->meanRxPowerDbm(kAp, a, 18.0, kCarA, b),
                   model->meanRxPowerDbm(kCarA, a, 18.0, kAp, b));
}

TEST(CompositeLinkModelTest, PowerDecreasesWithDistance) {
  auto model = makeModel();
  double prev = 1e9;
  for (double d = 1.0; d < 500.0; d *= 1.5) {
    const double p =
        model->meanRxPowerDbm(kAp, {0.0, 0.0}, 18.0, kCarA, {d, 0.0});
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(CompositeLinkModelTest, NoFadingPassesMeanThrough) {
  auto model = makeModel();
  Rng rng{1};
  EXPECT_DOUBLE_EQ(model->fadedRxPowerDbm(-70.0, rng), -70.0);
}

TEST(CompositeLinkModelTest, SuccessProbabilityDelegates) {
  auto model = makeModel();
  EXPECT_GT(model->successProbability(PhyMode::kDsss1Mbps, 20.0, 8000), 0.999);
  EXPECT_LT(model->successProbability(PhyMode::kDsss1Mbps, -15.0, 8000), 0.01);
}

TEST(CompositeLinkModelTest, NoBurstOverlayByDefault) {
  auto model = makeModel();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(model->burstLoss(kAp, kCarA, sim::SimTime::millis(i * 10.0), 0));
  }
}

TEST(CompositeLinkModelTest, BurstOverlayLosesFrames) {
  auto model = makeModel();
  GilbertElliottParams params;
  params.meanGoodSeconds = 0.5;
  params.meanBadSeconds = 0.5;
  params.lossInGood = 0.0;
  params.lossInBad = 1.0;
  model->enableBurstOverlay(params, Rng{5});
  int losses = 0;
  for (int i = 0; i < 2000; ++i) {
    if (model->burstLoss(kAp, kCarA, sim::SimTime::millis(i * 10.0), 0)) ++losses;
  }
  EXPECT_NEAR(static_cast<double>(losses) / 2000.0, 0.5, 0.12);
}

TEST(CompositeLinkModelTest, BurstChainsArePerDirectedLink) {
  auto model = makeModel();
  GilbertElliottParams params;
  params.meanGoodSeconds = 0.2;
  params.meanBadSeconds = 0.2;
  params.lossInBad = 1.0;
  model->enableBurstOverlay(params, Rng{6});
  // Different links evolve independently: outcomes must differ somewhere.
  int differ = 0;
  for (int i = 0; i < 500; ++i) {
    const sim::SimTime t = sim::SimTime::millis(i * 10.0);
    if (model->burstLoss(kAp, kCarA, t, 0) != model->burstLoss(kAp, kCarB, t, 0)) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 50);
}

TEST(CompositeLinkModelTest, BudgetIsAccessible) {
  LinkBudget budget;
  budget.noiseFloorDbm = -90.0;
  CompositeLinkModel model(std::make_unique<LogDistancePathLoss>(2.0, 40.0),
                           std::make_unique<LogDistancePathLoss>(2.0, 40.0),
                           std::make_unique<NoShadowing>(),
                           std::make_unique<NoFading>(), budget);
  EXPECT_DOUBLE_EQ(model.budget().noiseFloorDbm, -90.0);
}

}  // namespace
}  // namespace vanet::channel
