#include "channel/shadowing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace vanet::channel {
namespace {

geom::Polyline straightRoad() {
  return geom::Polyline{{{0.0, 0.0}, {1000.0, 0.0}}};
}

constexpr NodeId kCarA = 1;
constexpr NodeId kCarB = 2;
constexpr NodeId kAp = kFirstApId;

TEST(NoShadowingTest, AlwaysZero) {
  NoShadowing s;
  EXPECT_DOUBLE_EQ(s.shadowDb(kAp, {0, 0}, kCarA, {50, 0}), 0.0);
}

TEST(CorrelatedShadowingTest, FieldIsDeterministicPerRng) {
  const geom::Polyline road = straightRoad();
  CorrelatedRoadShadowing a(road, {}, Rng{42});
  CorrelatedRoadShadowing b(road, {}, Rng{42});
  for (double arc = 0.0; arc < 1000.0; arc += 50.0) {
    EXPECT_DOUBLE_EQ(a.fieldAt(arc), b.fieldAt(arc));
  }
}

TEST(CorrelatedShadowingTest, NearbyPositionsCorrelate) {
  const geom::Polyline road = straightRoad();
  ShadowingParams params;
  params.infraSigmaDb = 6.0;
  params.decorrelationMetres = 20.0;
  // Average the products over many field realisations.
  RunningStats nearProduct;
  RunningStats farProduct;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    CorrelatedRoadShadowing field(road, params, Rng{seed});
    const double x0 = field.fieldAt(500.0);
    nearProduct.add(x0 * field.fieldAt(503.0));
    farProduct.add(x0 * field.fieldAt(800.0));
  }
  const double sigma2 = 36.0;
  EXPECT_GT(nearProduct.mean(), 0.6 * sigma2);  // rho(3m) = e^-0.15 ~ 0.86
  EXPECT_LT(std::abs(farProduct.mean()), 0.25 * sigma2);  // ~decorrelated
}

TEST(CorrelatedShadowingTest, MarginalVarianceMatchesSigma) {
  const geom::Polyline road = straightRoad();
  ShadowingParams params;
  params.infraSigmaDb = 6.0;
  RunningStats values;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    CorrelatedRoadShadowing field(road, params, Rng{seed});
    values.add(field.fieldAt(400.0));
  }
  EXPECT_NEAR(values.mean(), 0.0, 1.0);
  EXPECT_NEAR(values.stddev(), 6.0, 1.0);
}

TEST(CorrelatedShadowingTest, InfraLinkReadsMobileEndpoint) {
  const geom::Polyline road = straightRoad();
  CorrelatedRoadShadowing field(road, {}, Rng{7});
  const geom::Vec2 carPos{250.0, 2.0};
  const geom::Vec2 apPos{500.0, -10.0};
  // AP->car and car->AP read the same (car-side) field value: reciprocity.
  EXPECT_DOUBLE_EQ(field.shadowDb(kAp, apPos, kCarA, carPos),
                   field.shadowDb(kCarA, carPos, kAp, apPos));
  EXPECT_DOUBLE_EQ(field.shadowDb(kAp, apPos, kCarA, carPos),
                   field.fieldAt(250.0));
}

TEST(CorrelatedShadowingTest, CoLocatedCarsSeeSameApShadow) {
  const geom::Polyline road = straightRoad();
  CorrelatedRoadShadowing field(road, {}, Rng{11});
  const geom::Vec2 apPos{500.0, -10.0};
  const double a = field.shadowDb(kAp, apPos, kCarA, {300.0, 0.0});
  const double b = field.shadowDb(kAp, apPos, kCarB, {300.0, 0.0});
  EXPECT_DOUBLE_EQ(a, b);  // diversity collapses when cars are together
}

TEST(CorrelatedShadowingTest, CarToCarPairConstantIsSymmetricAndStable) {
  const geom::Polyline road = straightRoad();
  CorrelatedRoadShadowing field(road, {}, Rng{13});
  const double ab = field.shadowDb(kCarA, {10, 0}, kCarB, {30, 0});
  const double ba = field.shadowDb(kCarB, {400, 0}, kCarA, {440, 0});
  EXPECT_DOUBLE_EQ(ab, ba);  // same pair -> same constant, any positions
  EXPECT_DOUBLE_EQ(ab, field.shadowDb(kCarA, {0, 0}, kCarB, {1, 0}));
}

TEST(ObstructedShadowingTest, SubtractsOnlyOnInfraLinks) {
  auto base = std::make_unique<NoShadowing>();
  ObstructedShadowing obstructed(
      std::move(base), [](geom::Vec2 pos) { return pos.y > 0 ? 30.0 : 0.0; });
  // Infra link with mobile off-street: blocked.
  EXPECT_DOUBLE_EQ(obstructed.shadowDb(kAp, {0, -10}, kCarA, {0, 50}), -30.0);
  // Infra link with mobile on-street: clear.
  EXPECT_DOUBLE_EQ(obstructed.shadowDb(kAp, {0, -10}, kCarA, {0, -1}), 0.0);
  // Car-to-car: never obstructed.
  EXPECT_DOUBLE_EQ(obstructed.shadowDb(kCarA, {0, 50}, kCarB, {0, 60}), 0.0);
}

TEST(ObstructedShadowingTest, MobileEndpointSelection) {
  auto base = std::make_unique<NoShadowing>();
  ObstructedShadowing obstructed(
      std::move(base), [](geom::Vec2 pos) { return pos.y; });
  // car -> AP: the mobile is the transmitter.
  EXPECT_DOUBLE_EQ(obstructed.shadowDb(kCarA, {0, 25}, kAp, {0, -10}), -25.0);
  // AP -> car: the mobile is the receiver.
  EXPECT_DOUBLE_EQ(obstructed.shadowDb(kAp, {0, -10}, kCarA, {0, 25}), -25.0);
}

}  // namespace
}  // namespace vanet::channel
