#include "channel/fading.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace vanet::channel {
namespace {

TEST(NoFadingTest, AlwaysZero) {
  NoFading model;
  Rng rng{1};
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.sampleDb(rng), 0.0);
  }
}

TEST(RayleighTest, UnitMeanPower) {
  RayleighFading model;
  Rng rng{2};
  double sumLinear = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sumLinear += std::pow(10.0, model.sampleDb(rng) / 10.0);
  }
  EXPECT_NEAR(sumLinear / n, 1.0, 0.02);
}

TEST(RayleighTest, DeepFadeProbability) {
  // P(power < 0.1) = 1 - e^-0.1 ~ 0.0952 for Exp(1) power.
  RayleighFading model;
  Rng rng{3};
  int deep = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (model.sampleDb(rng) < -10.0) ++deep;
  }
  EXPECT_NEAR(static_cast<double>(deep) / n, 1.0 - std::exp(-0.1), 0.005);
}

TEST(RicianTest, UnitMeanPower) {
  RicianFading model(6.0);
  Rng rng{4};
  double sumLinear = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sumLinear += std::pow(10.0, model.sampleDb(rng) / 10.0);
  }
  EXPECT_NEAR(sumLinear / n, 1.0, 0.02);
}

TEST(RicianTest, LargerKMeansLessVariance) {
  Rng rng{5};
  RicianFading mild(1.0);
  RicianFading strong(20.0);
  RunningStats mildDb;
  RunningStats strongDb;
  for (int i = 0; i < 50000; ++i) {
    mildDb.add(mild.sampleDb(rng));
    strongDb.add(strong.sampleDb(rng));
  }
  EXPECT_LT(strongDb.stddev(), mildDb.stddev());
}

TEST(RicianTest, KZeroBehavesLikeRayleigh) {
  // K=0 Rician is Rayleigh: compare deep-fade rates statistically.
  RicianFading rician(0.0);
  Rng rng{6};
  int deep = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rician.sampleDb(rng) < -10.0) ++deep;
  }
  EXPECT_NEAR(static_cast<double>(deep) / n, 1.0 - std::exp(-0.1), 0.006);
}

TEST(NakagamiTest, UnitMeanPower) {
  NakagamiFading model(2.0);
  Rng rng{8};
  double sumLinear = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sumLinear += std::pow(10.0, model.sampleDb(rng) / 10.0);
  }
  EXPECT_NEAR(sumLinear / n, 1.0, 0.02);
}

TEST(NakagamiTest, MOneMatchesRayleighDeepFades) {
  // Nakagami m=1 is Rayleigh: deep-fade probability must match.
  NakagamiFading model(1.0);
  Rng rng{9};
  int deep = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (model.sampleDb(rng) < -10.0) ++deep;
  }
  EXPECT_NEAR(static_cast<double>(deep) / n, 1.0 - std::exp(-0.1), 0.006);
}

TEST(NakagamiTest, LargerMLessVariance) {
  Rng rng{10};
  NakagamiFading mild(4.0);
  NakagamiFading harsh(0.6);
  RunningStats mildDb;
  RunningStats harshDb;
  for (int i = 0; i < 50000; ++i) {
    mildDb.add(mild.sampleDb(rng));
    harshDb.add(harsh.sampleDb(rng));
  }
  EXPECT_LT(mildDb.stddev(), harshDb.stddev());
}

TEST(NakagamiTest, SubRayleighIsHarsherThanRayleigh) {
  // m = 0.6 must produce more deep fades than Rayleigh (m = 1).
  Rng rng{11};
  NakagamiFading harsh(0.6);
  NakagamiFading rayleigh(1.0);
  int harshDeep = 0;
  int rayleighDeep = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    if (harsh.sampleDb(rng) < -10.0) ++harshDeep;
    if (rayleigh.sampleDb(rng) < -10.0) ++rayleighDeep;
  }
  EXPECT_GT(harshDeep, rayleighDeep);
}

TEST(NakagamiDeathTest, RejectsTooSmallM) {
  EXPECT_DEATH(NakagamiFading(0.3), "at least 0.5");
}

TEST(RicianDeathTest, RejectsNegativeK) {
  EXPECT_DEATH(RicianFading(-1.0), "non-negative");
}

}  // namespace
}  // namespace vanet::channel
