/// Reference-equivalence suite for the batched struct-of-arrays link path.
///
/// The behavioural spec of CompositeLinkModel::planBatch is the base-class
/// LinkModel::planBatch: a scalar per-receiver loop calling
/// meanRxPowerDbm / fadedRxPowerDbm in receiver order (exactly what the
/// radio environment used to do inline). These tests run twin,
/// identically-seeded model stacks -- one through the scalar reference,
/// one through the batched override -- and assert outputs AND every RNG
/// stream position stay bit-identical across urban/highway-like
/// compositions, Gilbert-Elliott burst states, and receiver-set churn.

#include "channel/link_batch.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "channel/link_model.h"
#include "geom/polyline.h"

namespace vanet::channel {
namespace {

constexpr NodeId kAp0 = kFirstApId;
constexpr NodeId kAp1 = kFirstApId + 1;

/// Forwards every scalar virtual to a wrapped model while inheriting the
/// base-class planBatch / successProbabilityBatch loops -- the scalar
/// per-receiver reference path.
class ScalarReference final : public LinkModel {
 public:
  explicit ScalarReference(LinkModel& inner) : inner_(inner) {}

  double meanRxPowerDbm(NodeId tx, geom::Vec2 txPos, double txPowerDbm,
                        NodeId rx, geom::Vec2 rxPos) override {
    return inner_.meanRxPowerDbm(tx, txPos, txPowerDbm, rx, rxPos);
  }
  double fadedRxPowerDbm(double meanDbm, Rng& rng) override {
    return inner_.fadedRxPowerDbm(meanDbm, rng);
  }
  double successProbability(PhyMode mode, double sinrDb,
                            int bits) const override {
    return inner_.successProbability(mode, sinrDb, bits);
  }
  bool burstLoss(NodeId tx, NodeId rx, sim::SimTime now,
                 int frameClass) override {
    return inner_.burstLoss(tx, rx, now, frameClass);
  }
  const LinkBudget& budget() const override { return inner_.budget(); }

 private:
  LinkModel& inner_;
};

/// One full model stack; two instances built with the same seeds produce
/// identical streams, so one can run the scalar reference and the other
/// the batched override.
struct Stack {
  geom::Polyline road;  // shadowing holds a reference; must outlive model
  std::unique_ptr<CompositeLinkModel> model;
  Rng envRng;

  Stack(bool urban, bool burst, std::uint64_t seed, bool rician = false)
      : road(urban ? geom::makeRectangleLoop(200.0, 150.0)
                   : geom::Polyline({{0.0, 0.0}, {3000.0, 0.0}})),
        envRng(seed + 17) {
    ShadowingParams shadowParams;
    std::unique_ptr<ShadowingProvider> shadowing =
        std::make_unique<CorrelatedRoadShadowing>(road, shadowParams,
                                                  Rng{seed + 1});
    if (urban) {
      shadowing = std::make_unique<ObstructedShadowing>(
          std::move(shadowing), [](geom::Vec2 pos) {
            return pos.x > 150.0 ? 12.0 : 0.0;  // corner blocking
          });
    }
    std::unique_ptr<FadingModel> fading;
    if (rician) {
      fading = std::make_unique<RicianFading>(5.0);  // batched Box-Muller
    } else if (urban) {
      fading = std::make_unique<RayleighFading>();
    } else {
      fading = std::make_unique<NakagamiFading>(3.0);  // draws normals
    }
    model = std::make_unique<CompositeLinkModel>(
        std::make_unique<LogDistancePathLoss>(3.0, 55.0),
        std::make_unique<LogDistancePathLoss>(2.4, 40.0), std::move(shadowing),
        std::move(fading), LinkBudget{});
    if (burst) {
      GilbertElliottParams params;
      params.meanGoodSeconds = 0.3;
      params.meanBadSeconds = 0.1;
      params.lossInGood = 0.02;
      params.lossInBad = 0.9;
      model->enableBurstOverlay(params, Rng{seed + 2});
    }
  }
};

struct Receiver {
  NodeId id;
  geom::Vec2 pos;
};

void fillBatch(LinkBatch& batch, const std::vector<Receiver>& receivers) {
  batch.clear();
  for (const Receiver& rx : receivers) batch.add(rx.id, rx.pos);
  batch.prepare();
}

/// Runs one transmission through both paths and asserts bit-identity of
/// the planned mean/faded powers.
void expectBatchMatchesScalar(Stack& scalarStack, Stack& batchedStack,
                              NodeId tx, geom::Vec2 txPos,
                              const std::vector<Receiver>& receivers) {
  ScalarReference reference(*scalarStack.model);
  LinkBatch scalarBatch, batchedBatch;
  fillBatch(scalarBatch, receivers);
  fillBatch(batchedBatch, receivers);
  reference.planBatch(tx, txPos, 16.0, scalarBatch, scalarStack.envRng);
  batchedStack.model->planBatch(tx, txPos, 16.0, batchedBatch,
                                batchedStack.envRng);
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    EXPECT_EQ(scalarBatch.meanDbm()[i], batchedBatch.meanDbm()[i])
        << "mean mismatch at receiver " << receivers[i].id;
    EXPECT_EQ(scalarBatch.fadedDbm()[i], batchedBatch.fadedDbm()[i])
        << "faded mismatch at receiver " << receivers[i].id;
  }
}

/// Asserts both environment streams sit at the same position, including
/// the Box-Muller spare-gaussian cache (normal() consumes it first).
void expectSameRngPosition(Rng& a, Rng& b) {
  EXPECT_EQ(a.normal(), b.normal());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(LinkBatchEquivalenceTest, UrbanConfigMatchesScalarReference) {
  Stack scalar(/*urban=*/true, /*burst=*/false, 40);
  Stack batched(/*urban=*/true, /*burst=*/false, 40);
  // Car transmitter: mixed car and AP receivers (the AP links read the
  // shadowing field at the transmitter's arc; car links draw lazy pair
  // constants in receiver order).
  expectBatchMatchesScalar(scalar, batched, 1, {10.0, 0.0},
                           {{2, {30.0, 0.0}},
                            {kAp0, {100.0, 0.0}},
                            {3, {60.0, 5.0}},
                            {kAp1, {200.0, 75.0}}});
  // AP transmitter: field reads at each mobile receiver plus an AP<->AP
  // pair constant.
  expectBatchMatchesScalar(scalar, batched, kAp0, {100.0, 0.0},
                           {{1, {12.0, 0.0}},
                            {2, {180.0, 20.0}},
                            {kAp1, {200.0, 75.0}},
                            {3, {90.0, 0.0}}});
  // Same pairs again: cached constants, no fresh shadowing draws.
  expectBatchMatchesScalar(scalar, batched, 1, {40.0, 0.0},
                           {{2, {55.0, 0.0}}, {kAp0, {100.0, 0.0}}});
  expectSameRngPosition(scalar.envRng, batched.envRng);
}

TEST(LinkBatchEquivalenceTest, HighwayConfigWithBurstMatchesScalarReference) {
  Stack scalar(/*urban=*/false, /*burst=*/true, 77);
  Stack batched(/*urban=*/false, /*burst=*/true, 77);
  ScalarReference reference(*scalar.model);

  const std::vector<Receiver> receivers = {{2, {250.0, 0.0}},
                                           {kAp0, {500.0, 10.0}},
                                           {3, {300.0, 3.0}},
                                           {kAp1, {1500.0, 10.0}}};
  expectBatchMatchesScalar(scalar, batched, 1, {200.0, 0.0}, receivers);

  // Burst chains: advance both overlays through an interleaved schedule
  // of links and times; state (and the per-chain streams) must match at
  // every step, including chains created lazily mid-sequence.
  for (int step = 0; step < 200; ++step) {
    const NodeId tx = (step % 3 == 0) ? kAp0 : 1;
    const NodeId rx = (step % 2 == 0) ? 2 : 3 + (step % 5);
    const sim::SimTime now = sim::SimTime::millis(step * 7.0);
    EXPECT_EQ(reference.burstLoss(tx, rx, now, 0),
              batched.model->burstLoss(tx, rx, now, 0))
        << "burst divergence at step " << step;
  }
  expectSameRngPosition(scalar.envRng, batched.envRng);
}

TEST(LinkBatchEquivalenceTest, ReceiverChurnKeepsStreamsAligned) {
  Stack scalar(/*urban=*/true, /*burst=*/false, 91);
  Stack batched(/*urban=*/true, /*burst=*/false, 91);
  // Join/leave churn: the receiver set changes between transmissions
  // (node 4 joins, node 2 leaves, node 5 joins), so plan-array sizes and
  // the lazy pair-constant draw schedule shift run to run.
  expectBatchMatchesScalar(scalar, batched, 1, {5.0, 0.0},
                           {{2, {20.0, 0.0}}, {3, {35.0, 0.0}}});
  expectBatchMatchesScalar(scalar, batched, 1, {8.0, 0.0},
                           {{2, {22.0, 0.0}},
                            {3, {37.0, 0.0}},
                            {4, {50.0, 0.0}}});
  expectBatchMatchesScalar(scalar, batched, 3, {40.0, 0.0},
                           {{4, {52.0, 0.0}}, {kAp0, {100.0, 0.0}}});
  expectBatchMatchesScalar(scalar, batched, 1, {11.0, 0.0},
                           {{4, {55.0, 0.0}}, {5, {70.0, 0.0}}});
  expectSameRngPosition(scalar.envRng, batched.envRng);
}

TEST(LinkBatchEquivalenceTest, RicianConfigMatchesScalarReference) {
  // Rician fading consumes two normals per receiver; the batched path
  // draws the uniforms per receiver and runs the Box-Muller transform
  // through the batched vmath kernel.
  Stack scalar(/*urban=*/false, /*burst=*/false, 55, /*rician=*/true);
  Stack batched(/*urban=*/false, /*burst=*/false, 55, /*rician=*/true);
  const std::vector<Receiver> receivers = {{2, {250.0, 0.0}},
                                           {kAp0, {500.0, 10.0}},
                                           {3, {300.0, 3.0}},
                                           {kAp1, {1500.0, 10.0}},
                                           {4, {320.0, 0.0}}};
  expectBatchMatchesScalar(scalar, batched, 1, {200.0, 0.0}, receivers);
  // Dirty Box-Muller cache: consume one normal on both environment
  // streams so the next batch enters with a cached spare variate -- the
  // batched transform must honour it (offset-by-one pairing).
  EXPECT_EQ(scalar.envRng.normal(), batched.envRng.normal());
  expectBatchMatchesScalar(scalar, batched, kAp0, {500.0, 10.0}, receivers);
  expectSameRngPosition(scalar.envRng, batched.envRng);
}

TEST(LinkBatchEquivalenceTest, NormalBatchMatchesScalarNormalDraws) {
  // Rng::normalBatch is the primitive under the batched Rician path: it
  // must be bit- and stream-identical to n scalar normal() calls through
  // every cache state (clean entry, odd count leaving a spare, dirty
  // entry, and the n=0 / n=1 edges).
  Rng a{4242};
  Rng b{4242};
  std::vector<double> z(7);
  a.normalBatch(z.data(), 7);  // clean entry, odd: leaves a cached spare
  for (double v : z) EXPECT_EQ(v, b.normal());
  std::vector<double> z2(6);
  a.normalBatch(z2.data(), 6);  // dirty entry, even total: spare again
  for (double v : z2) EXPECT_EQ(v, b.normal());
  a.normalBatch(z.data(), 0);  // no-op: must not touch stream or cache
  double one = 0.0;
  a.normalBatch(&one, 1);  // served entirely from the cached spare
  EXPECT_EQ(one, b.normal());
  expectSameRngPosition(a, b);
}

TEST(LinkBatchEquivalenceTest, SuccessProbabilityBatchMatchesScalar) {
  Stack scalar(/*urban=*/false, /*burst=*/false, 13);
  Stack batched(/*urban=*/false, /*burst=*/false, 13);
  ScalarReference reference(*scalar.model);
  const std::vector<double> sinr = {-5.0, 2.5, 8.0, 14.0, 30.0};
  std::vector<double> pScalar(sinr.size()), pBatched(sinr.size());
  reference.successProbabilityBatch(PhyMode::kDsss1Mbps, sinr.data(), 8000,
                                    pScalar.data(), sinr.size());
  batched.model->successProbabilityBatch(PhyMode::kDsss1Mbps, sinr.data(),
                                         8000, pBatched.data(), sinr.size());
  for (std::size_t i = 0; i < sinr.size(); ++i) {
    EXPECT_EQ(pScalar[i], pBatched[i]);
  }
}

TEST(LinkBatchEquivalenceTest, EmptyReceiverSetConsumesNoRandomness) {
  Stack batched(/*urban=*/true, /*burst=*/false, 3);
  Rng before = batched.envRng;  // copy: continues the sequence identically
  LinkBatch batch;
  batch.clear();
  batch.prepare();
  batched.model->planBatch(1, {0.0, 0.0}, 16.0, batch, batched.envRng);
  EXPECT_EQ(batch.size(), 0u);
  // Environment stream untouched (probe copies: the position check
  // itself draws, and the live stream must stay pristine for the twin
  // comparison below).
  Rng probeLive = batched.envRng;
  Rng probeBefore = before;
  expectSameRngPosition(probeLive, probeBefore);
  // ...and the shadowing stream too: a twin stack that never saw the
  // empty batch must still produce identical draws afterwards.
  Stack twin(/*urban=*/true, /*burst=*/false, 3);
  expectBatchMatchesScalar(twin, batched, 1, {10.0, 0.0},
                           {{2, {30.0, 0.0}}, {kAp0, {100.0, 0.0}}});
}

}  // namespace
}  // namespace vanet::channel
