/// \file vanet_campaign.cpp
/// The spec-driven campaign CLI: one binary runs any study described by
/// a `vanet-campaign-spec` v1 file (see runner/spec.h), so shipping an
/// experiment to N machines means shipping one JSON document -- not a
/// bespoke binary with a flag matrix.
///
///   vanet_campaign run spec.json [--csv=DIR] [engine flags]
///       Runs the spec. The experiment definition (scenario, cases,
///       grid, seed, replication policy, emit list) lives entirely in
///       the spec; the flags steer only the engine:
///         --threads=N --round-threads=N --shard=i/N --streaming
///         --checkpoint=F --resume --halt-after-waves=K
///         --partial-out=F --partial-format=bin|json
///         --progress --log-level=L
///       With --csv=DIR the spec's emit list is written into DIR, every
///       artefact with a manifest sidecar recording the spec path and
///       the digest of its normalized rendering.
///
///   vanet_campaign print spec.json
///       Parses, validates and re-renders the spec in normalized form
///       on stdout. print is a fixed point: printing a printed spec is
///       byte-identical.
///
///   vanet_campaign list
///       Every registered scenario with its parameters, defaults, and
///       default emit kinds.

#include <cstdio>
#include <iostream>

#include "obs/manifest.h"
#include "runner/campaign.h"
#include "runner/emit.h"
#include "runner/registry.h"
#include "runner/spec.h"
#include "util/flags.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vanet_campaign run <spec.json> [--csv=DIR] "
               "[engine flags]\n"
               "       vanet_campaign print <spec.json>\n"
               "       vanet_campaign list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  if (flags.positional().empty()) return usage();
  const std::string& verb = flags.positional()[0];

  if (verb == "list") {
    flags.allowOnly({"log-level"});
    std::cout << runner::renderScenarioList();
    return 0;
  }

  if (flags.positional().size() != 2) return usage();
  const std::string& specPath = flags.positional()[1];

  if (verb == "print") {
    flags.allowOnly({"log-level"});
    try {
      std::cout << runner::renderCampaignSpec(
          runner::loadCampaignSpec(specPath));
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 1;
    }
    return 0;
  }

  if (verb != "run") return usage();
  // Engine knobs only: the experiment definition is the spec's. No
  // --seed / --rounds / --target-ci here by design -- edit the spec.
  std::vector<std::string> known = {
      "threads",    "round-threads",    "shard",     "partial-out",
      "partial-format", "checkpoint",   "resume",    "halt-after-waves",
      "streaming",  "progress",         "log-level", "csv"};
  flags.allowOnly(known);

  runner::CampaignSpec spec;
  try {
    spec = runner::loadCampaignSpec(specPath);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  obs::setRunSpec(specPath, runner::campaignSpecDigest(spec));

  const CampaignRunFlags run = campaignRunFlags(flags, spec.seed);
  runner::CampaignConfig config = runner::campaignConfigFromSpec(spec);
  runner::applyEngineFlags(run, config);

  if (!spec.title.empty()) {
    std::cout << spec.title << "\n";
    if (!spec.paperRef.empty()) std::cout << spec.paperRef << "\n";
    std::cout << "\n";
  }

  runner::CampaignResult result;
  try {
    result = runner::runCampaign(config);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  if (result.halted) {
    std::cout << "halted at a wave barrier after " << result.waves
              << " wave(s); the checkpoint file holds the fold state\n";
    return 0;
  }
  std::cout << runner::renderCampaignSummary(result, config.grid);

  if (!run.partialOut.empty()) {
    const runner::PartialFormat format =
        run.partialFormat == "bin"    ? runner::PartialFormat::kBinary
        : run.partialFormat == "json" ? runner::PartialFormat::kJson
                                      : runner::PartialFormat::kAuto;
    if (!runner::writeCampaignPartial(run.partialOut,
                                      runner::campaignPartial(result),
                                      format)) {
      return 1;
    }
    std::cout << "wrote " << run.partialOut << "\n";
  }

  const std::string dir = flags.getString("csv", "");
  if (!dir.empty()) {
    std::vector<std::string> written;
    bool ok = false;
    try {
      ok = runner::writeSpecArtifacts(spec, result, dir, written);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 1;
    }
    for (const std::string& path : written) {
      std::cout << "wrote " << path << "\n";
    }
    if (!ok) return 1;
  }
  return 0;
}
