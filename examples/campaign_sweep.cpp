/// \file campaign_sweep.cpp
/// Campaign-engine walkthrough: declare a sweep grid over the highway
/// drive-thru scenario (speed x cooperation), run it on all cores, and
/// emit the merged results as console summary, CSV and JSON.
///
///   $ ./example_campaign_sweep [--repl=4] [--threads=0] [--seed=2008]
///       [--round-threads=1] (round workers inside each job)
///       [--out=DIR] (write DIR/campaign.csv and DIR/campaign.json)
///       [--shard=i/N] [--partial-out=FILE] [--streaming]
///
/// With --shard/--partial-out this runs one slice of the grid and writes
/// a partial-result file for example_campaign_merge -- the two-process
/// merged output is byte-identical to the single-process run.
///
/// Scenarios are looked up by name in the global registry; run with
/// --list to see every registered scenario and its parameters.

#include <iostream>

#include "obs/manifest.h"
#include "runner/campaign.h"
#include "runner/emit.h"
#include "runner/registry.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  {
    std::vector<std::string> names = campaignFlagNames();
    names.insert(names.end(), {"list", "scenario", "repl", "rounds", "out"});
    flags.allowOnly(names);
  }

  if (flags.getBool("list", false)) {
    std::cout << runner::renderScenarioList();
    return 0;
  }

  const CampaignRunFlags run = campaignRunFlags(flags);
  runner::CampaignConfig campaign;
  campaign.scenario = flags.getString("scenario", "highway");
  campaign.masterSeed = run.seed;
  campaign.replications = flags.getInt("repl", 4);
  campaign.threads = run.threads;
  campaign.roundThreads = run.roundThreads;
  campaign.shard = runner::Shard{run.shard.index, run.shard.count};
  campaign.streaming = run.streaming;
  campaign.progress = run.progress;
  campaign.checkpointPath = run.checkpoint;
  campaign.resume = run.resume;
  campaign.haltAfterWaves = run.haltAfterWaves;
  campaign.base.set("rounds", flags.getInt("rounds", 3));
  campaign.base.set("aps", 1);
  campaign.base.set("road_length", 2400.0);
  campaign.base.set("first_ap_arc", 1200.0);
  campaign.grid.add("speed_kmh", {40.0, 60.0, 80.0, 100.0})
      .add("coop", {0.0, 1.0});

  std::cout << "sweeping " << campaign.scenario << " over "
            << campaign.grid.pointCount() << " grid points x "
            << campaign.replications << " replications...\n\n";
  runner::CampaignResult result;
  try {
    result = runner::runCampaign(campaign);
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  if (result.halted) {
    std::cout << "halted at a wave barrier after " << result.waves
              << " wave(s); the checkpoint file holds the fold state\n";
    return 0;
  }
  std::cout << runner::renderCampaignSummary(result, campaign.grid);

  if (!run.partialOut.empty()) {
    const runner::PartialFormat format =
        run.partialFormat == "bin"    ? runner::PartialFormat::kBinary
        : run.partialFormat == "json" ? runner::PartialFormat::kJson
                                      : runner::PartialFormat::kAuto;
    // A failed partial write must fail the process: the merge step would
    // otherwise happily pick up a stale file from an earlier run.
    if (!runner::writeCampaignPartial(run.partialOut,
                                      runner::campaignPartial(result),
                                      format)) {
      return 1;
    }
    std::cout << "wrote " << run.partialOut << "\n";
  }

  const std::string dir = flags.getString("out", "");
  if (!dir.empty()) {
    const std::string csvPath = dir + "/campaign.csv";
    const std::string jsonPath = dir + "/campaign.json";
    if (runner::writeCampaignCsv(csvPath, result)) {
      std::cout << "wrote " << csvPath << "\n";
    }
    if (runner::writeCampaignJson(jsonPath, result)) {
      std::cout << "wrote " << jsonPath << "\n";
    }
  }
  return 0;
}
