/// \file quickstart.cpp
/// Minimal tour of the public API: build the paper's urban scenario, run a
/// few rounds with Cooperative ARQ, and print what cooperation bought.
///
///   $ ./quickstart [--rounds=5] [--seed=1]

#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table1.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  flags.allowOnly({"rounds", "seed", "log-level"});

  // 1. Describe the experiment. Defaults reproduce the ICDCS'08 testbed:
  //    three cars lapping an urban block at 20 km/h past one AP that
  //    streams 5 x 1000-byte packets per second to each car.
  analysis::UrbanExperimentConfig config;
  config.rounds = flags.getInt("rounds", 5);
  config.seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));

  // 2. Run it. Everything is deterministic in (config, seed).
  analysis::UrbanExperiment experiment(config);
  const analysis::UrbanExperimentResult result = experiment.run();

  // 3. Read the results.
  std::cout << "Cooperative ARQ on the urban loop, " << result.rounds
            << " rounds:\n\n";
  std::cout << analysis::renderLossSummary(result.table1) << "\n";
  std::cout << "The joint bound is the virtual-car optimum: packets at least"
               " one platoon\nmember received. C-ARQ closes most of the gap"
               " between the before-cooperation\nlosses and that bound.\n";
  return 0;
}
