/// \file bench_compare.cpp
/// Perf-trajectory gate: compares two "vanet-bench" documents (see
/// bench_perf_kernel --json and docs/observability.md) and fails when a
/// kernel regressed beyond the noise band.
///
///   $ ./example_bench_compare BASELINE.json CURRENT.json
///       [--threshold=0.20] [--gate-campaign[=0.5]] [--markdown=summary.md]
///
/// A kernel counts as regressed when
///   cur.mean - base.mean > threshold * base.mean + base.ci95 + cur.ci95
/// i.e. the slowdown must exceed the relative threshold *plus* both
/// runs' 95% confidence intervals, so noisy CI machines do not produce
/// false alarms.
///
/// The campaign jobs/sec figure is gated too (--gate-campaign, on by
/// default): the current throughput must not drop more than the gate
/// threshold (default 0.5 -- generous, because jobs/s depends on the
/// host's core count) below the baseline. --gate-campaign=X sets the
/// threshold; --gate-campaign=off reverts it to advisory.
///
/// --markdown appends a GitHub-flavoured summary table to the given file
/// (pass "$GITHUB_STEP_SUMMARY" in CI so the trajectory is visible on the
/// run page without opening logs).
///
/// Exit codes: 0 ok, 1 regression detected, 2 usage/parse error.

#include <cstdio>
#include <exception>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/json.h"

namespace {

struct KernelRow {
  std::string name;
  double meanSeconds = 0.0;
  double ci95Seconds = 0.0;
  double nsPerItem = 0.0;
};

struct BenchDoc {
  std::string gitRev;
  std::vector<KernelRow> kernels;
  double jobsPerSecond = 0.0;
};

/// One comparison line, shared by the text and markdown renderers.
struct CompareRow {
  std::string name;
  bool haveBase = false;
  bool haveCur = false;
  double baseMs = 0.0;
  double curMs = 0.0;
  double pct = 0.0;
  std::string verdict;
};

BenchDoc readBench(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const vanet::json::Value doc = vanet::json::parse(text);
  if (doc.at("format").asString() != "vanet-bench") {
    throw std::runtime_error(path + " is not a vanet-bench document");
  }
  BenchDoc bench;
  bench.gitRev = doc.at("git_rev").asString();
  for (const vanet::json::Value& kernel : doc.at("kernels").asArray()) {
    KernelRow row;
    row.name = kernel.at("name").asString();
    row.meanSeconds = kernel.at("mean_seconds").asDouble();
    row.ci95Seconds = kernel.at("ci95_seconds").asDouble();
    row.nsPerItem = kernel.at("ns_per_item").asDouble();
    bench.kernels.push_back(row);
  }
  bench.jobsPerSecond = doc.at("campaign").at("jobs_per_second").asDouble();
  return bench;
}

const KernelRow* findKernel(const BenchDoc& doc, const std::string& name) {
  for (const KernelRow& row : doc.kernels) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

void writeMarkdown(const std::string& path, const BenchDoc& base,
                   const BenchDoc& cur, const std::vector<CompareRow>& rows,
                   double threshold, bool regressed) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "warning: cannot open %s for markdown summary\n",
                 path.c_str());
    return;
  }
  out << "### Perf trajectory: " << base.gitRev << " → " << cur.gitRev
      << (regressed ? " — **REGRESSED**" : " — ok") << "\n\n";
  out << "| kernel | base ms | current ms | delta | verdict |\n";
  out << "|---|---:|---:|---:|---|\n";
  char buf[64];
  for (const CompareRow& row : rows) {
    out << "| `" << row.name << "` | ";
    if (row.haveBase) {
      std::snprintf(buf, sizeof buf, "%.3f", row.baseMs);
      out << buf;
    } else {
      out << "—";
    }
    out << " | ";
    if (row.haveCur) {
      std::snprintf(buf, sizeof buf, "%.3f", row.curMs);
      out << buf;
    } else {
      out << "—";
    }
    out << " | ";
    if (row.haveBase && row.haveCur) {
      std::snprintf(buf, sizeof buf, "%+.1f%%", row.pct);
      out << buf;
    } else {
      out << "—";
    }
    out << " | " << row.verdict << " |\n";
  }
  std::snprintf(buf, sizeof buf, "%.0f%%", threshold * 100.0);
  out << "\nGate: slowdown > " << buf << " of baseline + both CI95 bands.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  flags.allowOnly({"threshold", "markdown", "gate-campaign", "log-level"});
  if (flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CURRENT.json"
                 " [--threshold=0.20] [--gate-campaign[=0.5]]"
                 " [--markdown=summary.md]\n");
    return 2;
  }
  const double threshold = flags.getDouble("threshold", 0.20);
  const std::string markdownPath = flags.getString("markdown", "");
  // Campaign-throughput gate: on by default. --gate-campaign=off|false|no
  // reverts to advisory; a bare --gate-campaign (or =true) keeps the
  // default threshold; any other value parses as the threshold itself.
  bool gateCampaign = true;
  double gateThreshold = 0.5;
  if (flags.has("gate-campaign")) {
    const std::string value = flags.getString("gate-campaign", "");
    if (value == "off" || value == "false" || value == "no") {
      gateCampaign = false;
    } else if (value != "true" && value != "on" && value != "yes") {
      gateThreshold = flags.getDouble("gate-campaign", gateThreshold);
    }
  }

  BenchDoc base, cur;
  try {
    base = readBench(flags.positional()[0]);
    cur = readBench(flags.positional()[1]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }

  std::printf("baseline %s  vs  current %s  (threshold %.0f%%)\n\n",
              base.gitRev.c_str(), cur.gitRev.c_str(), threshold * 100.0);
  std::printf("%-16s %12s %12s %9s  %s\n", "kernel", "base ms", "cur ms",
              "delta", "verdict");

  std::vector<CompareRow> rows;
  bool regressed = false;
  for (const KernelRow& baseRow : base.kernels) {
    CompareRow out;
    out.name = baseRow.name;
    out.haveBase = true;
    out.baseMs = baseRow.meanSeconds * 1e3;
    const KernelRow* curRow = findKernel(cur, baseRow.name);
    if (curRow == nullptr) {
      // A kernel the baseline knew about vanished: the trajectory lost
      // coverage, which must fail rather than silently pass.
      std::printf("%-16s %12.3f %12s %9s  MISSING\n", baseRow.name.c_str(),
                  baseRow.meanSeconds * 1e3, "-", "-");
      out.verdict = "MISSING";
      regressed = true;
      rows.push_back(out);
      continue;
    }
    const double delta = curRow->meanSeconds - baseRow.meanSeconds;
    const double allowed = threshold * baseRow.meanSeconds +
                           baseRow.ci95Seconds + curRow->ci95Seconds;
    const bool bad = delta > allowed;
    regressed = regressed || bad;
    const double pct = baseRow.meanSeconds > 0.0
                           ? 100.0 * delta / baseRow.meanSeconds
                           : 0.0;
    std::printf("%-16s %12.3f %12.3f %+8.1f%%  %s\n", baseRow.name.c_str(),
                baseRow.meanSeconds * 1e3, curRow->meanSeconds * 1e3, pct,
                bad ? "REGRESSED" : "ok");
    out.haveCur = true;
    out.curMs = curRow->meanSeconds * 1e3;
    out.pct = pct;
    out.verdict = bad ? "**REGRESSED**" : "ok";
    rows.push_back(out);
  }
  for (const KernelRow& curRow : cur.kernels) {
    if (findKernel(base, curRow.name) == nullptr) {
      std::printf("%-16s %12s %12.3f %9s  new (no baseline)\n",
                  curRow.name.c_str(), "-", curRow.meanSeconds * 1e3, "-");
      CompareRow out;
      out.name = curRow.name;
      out.haveCur = true;
      out.curMs = curRow.meanSeconds * 1e3;
      out.verdict = "new (no baseline)";
      rows.push_back(out);
    }
  }

  if (base.jobsPerSecond > 0.0) {
    CompareRow out;
    out.name = "campaign (jobs/s)";
    out.haveBase = true;
    out.baseMs = base.jobsPerSecond;  // jobs/s, not ms -- named in the row
    if (cur.jobsPerSecond > 0.0) {
      // Higher is better here: the gate fires on a throughput *drop*
      // beyond the (generous, host-dependent) threshold.
      const double drop =
          (base.jobsPerSecond - cur.jobsPerSecond) / base.jobsPerSecond;
      const bool bad = gateCampaign && drop > gateThreshold;
      regressed = regressed || bad;
      out.haveCur = true;
      out.curMs = cur.jobsPerSecond;
      out.pct = -100.0 * drop;
      out.verdict = !gateCampaign  ? "advisory"
                    : bad          ? "**REGRESSED**"
                                   : "ok";
      std::printf("\ncampaign throughput: %.2f -> %.2f jobs/s (%+.1f%%, %s)\n",
                  base.jobsPerSecond, cur.jobsPerSecond, out.pct,
                  !gateCampaign ? "advisory"
                  : bad         ? "REGRESSED"
                                : "ok");
    } else {
      // The current document lost the campaign figure: gated coverage
      // vanished, which must fail like a MISSING kernel.
      out.verdict = gateCampaign ? "MISSING" : "advisory";
      regressed = regressed || gateCampaign;
      std::printf("\ncampaign throughput: %.2f -> ? jobs/s (%s)\n",
                  base.jobsPerSecond,
                  gateCampaign ? "MISSING" : "advisory");
    }
    rows.push_back(out);
  }

  if (!markdownPath.empty()) {
    writeMarkdown(markdownPath, base, cur, rows, threshold, regressed);
  }

  if (regressed) {
    std::printf("\nperf regression detected (threshold %.0f%% + CI bands)\n",
                threshold * 100.0);
    return 1;
  }
  std::printf("\nno kernel regressed beyond the noise band\n");
  return 0;
}
