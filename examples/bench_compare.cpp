/// \file bench_compare.cpp
/// Perf-trajectory gate: compares two "vanet-bench" documents (see
/// bench_perf_kernel --json and docs/observability.md) and fails when a
/// kernel regressed beyond the noise band.
///
///   $ ./example_bench_compare BASELINE.json CURRENT.json [--threshold=0.20]
///
/// A kernel counts as regressed when
///   cur.mean - base.mean > threshold * base.mean + base.ci95 + cur.ci95
/// i.e. the slowdown must exceed the relative threshold *plus* both
/// runs' 95% confidence intervals, so noisy CI machines do not produce
/// false alarms. The campaign jobs/sec delta is printed but advisory
/// only (it depends on the host's core count).
///
/// Exit codes: 0 ok, 1 regression detected, 2 usage/parse error.

#include <cstdio>
#include <exception>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/json.h"

namespace {

struct KernelRow {
  std::string name;
  double meanSeconds = 0.0;
  double ci95Seconds = 0.0;
  double nsPerItem = 0.0;
};

struct BenchDoc {
  std::string gitRev;
  std::vector<KernelRow> kernels;
  double jobsPerSecond = 0.0;
};

BenchDoc readBench(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const vanet::json::Value doc = vanet::json::parse(text);
  if (doc.at("format").asString() != "vanet-bench") {
    throw std::runtime_error(path + " is not a vanet-bench document");
  }
  BenchDoc bench;
  bench.gitRev = doc.at("git_rev").asString();
  for (const vanet::json::Value& kernel : doc.at("kernels").asArray()) {
    KernelRow row;
    row.name = kernel.at("name").asString();
    row.meanSeconds = kernel.at("mean_seconds").asDouble();
    row.ci95Seconds = kernel.at("ci95_seconds").asDouble();
    row.nsPerItem = kernel.at("ns_per_item").asDouble();
    bench.kernels.push_back(row);
  }
  bench.jobsPerSecond = doc.at("campaign").at("jobs_per_second").asDouble();
  return bench;
}

const KernelRow* findKernel(const BenchDoc& doc, const std::string& name) {
  for (const KernelRow& row : doc.kernels) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  if (flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CURRENT.json"
                 " [--threshold=0.20]\n");
    return 2;
  }
  const double threshold = flags.getDouble("threshold", 0.20);

  BenchDoc base, cur;
  try {
    base = readBench(flags.positional()[0]);
    cur = readBench(flags.positional()[1]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }

  std::printf("baseline %s  vs  current %s  (threshold %.0f%%)\n\n",
              base.gitRev.c_str(), cur.gitRev.c_str(), threshold * 100.0);
  std::printf("%-16s %12s %12s %9s  %s\n", "kernel", "base ms", "cur ms",
              "delta", "verdict");

  bool regressed = false;
  for (const KernelRow& baseRow : base.kernels) {
    const KernelRow* curRow = findKernel(cur, baseRow.name);
    if (curRow == nullptr) {
      // A kernel the baseline knew about vanished: the trajectory lost
      // coverage, which must fail rather than silently pass.
      std::printf("%-16s %12.3f %12s %9s  MISSING\n", baseRow.name.c_str(),
                  baseRow.meanSeconds * 1e3, "-", "-");
      regressed = true;
      continue;
    }
    const double delta = curRow->meanSeconds - baseRow.meanSeconds;
    const double allowed = threshold * baseRow.meanSeconds +
                           baseRow.ci95Seconds + curRow->ci95Seconds;
    const bool bad = delta > allowed;
    regressed = regressed || bad;
    const double pct = baseRow.meanSeconds > 0.0
                           ? 100.0 * delta / baseRow.meanSeconds
                           : 0.0;
    std::printf("%-16s %12.3f %12.3f %+8.1f%%  %s\n", baseRow.name.c_str(),
                baseRow.meanSeconds * 1e3, curRow->meanSeconds * 1e3, pct,
                bad ? "REGRESSED" : "ok");
  }
  for (const KernelRow& curRow : cur.kernels) {
    if (findKernel(base, curRow.name) == nullptr) {
      std::printf("%-16s %12s %12.3f %9s  new (no baseline)\n",
                  curRow.name.c_str(), "-", curRow.meanSeconds * 1e3, "-");
    }
  }

  if (base.jobsPerSecond > 0.0 && cur.jobsPerSecond > 0.0) {
    std::printf("\ncampaign throughput: %.2f -> %.2f jobs/s (advisory)\n",
                base.jobsPerSecond, cur.jobsPerSecond);
  }

  if (regressed) {
    std::printf("\nperf regression detected (threshold %.0f%% + CI bands)\n",
                threshold * 100.0);
    return 1;
  }
  std::printf("\nno kernel regressed beyond the noise band\n");
  return 0;
}
