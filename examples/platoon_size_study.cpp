/// \file platoon_size_study.cpp
/// How much diversity does each extra platoon member buy? Runs the urban
/// scenario with growing platoons and two cooperator-selection policies,
/// printing the lead car's loss trajectory. Demonstrates the selection
/// API the paper's §6 leaves as future work.
///
///   $ ./platoon_size_study [--max-cars=6] [--rounds=10] [--seed=5]

#include <iomanip>
#include <iostream>

#include "analysis/experiment.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  flags.allowOnly({"max-cars", "rounds", "seed", "log-level"});
  const int maxCars = flags.getInt("max-cars", 6);
  const int rounds = flags.getInt("rounds", 10);

  std::cout << "Loss of the lead car vs platoon size (urban loop, " << rounds
            << " rounds)\n\n";
  std::cout << std::left << std::setw(7) << "cars" << std::right
            << std::setw(12) << "before" << std::setw(22)
            << "after (all-one-hop)" << std::setw(22)
            << "after (best-rssi k=2)" << std::setw(12) << "joint" << "\n";

  for (int cars = 1; cars <= maxCars; ++cars) {
    double before = 0.0;
    double joint = 0.0;
    double afterAll = 0.0;
    double afterBest = 0.0;
    for (const bool bestRssi : {false, true}) {
      analysis::UrbanExperimentConfig config;
      config.rounds = rounds;
      config.seed = static_cast<std::uint64_t>(flags.getInt("seed", 5));
      config.scenario.carCount = cars;
      config.carq.selection = bestRssi ? carq::SelectionPolicy::kBestRssi
                                       : carq::SelectionPolicy::kAllOneHop;
      config.carq.maxCooperators = 2;
      analysis::UrbanExperiment experiment(config);
      const auto result = experiment.run();
      const auto& car1 = result.table1.rows.front();
      if (bestRssi) {
        afterBest = car1.pctLostAfter.mean();
      } else {
        afterAll = car1.pctLostAfter.mean();
        before = car1.pctLostBefore.mean();
        joint = car1.pctLostJoint.mean();
      }
    }
    std::cout << std::left << std::setw(7) << cars << std::right << std::fixed
              << std::setprecision(1) << std::setw(11) << before << "%"
              << std::setw(21) << afterAll << "%" << std::setw(21)
              << afterBest << "%" << std::setw(11) << joint << "%\n";
  }
  std::cout << "\nDiversity saturates after a few cars: the joint bound"
               " flattens. Capping\nresponders at the two RSSI-strongest"
               " neighbours shortens response windows but\ncosts some"
               " recovery -- the strongest neighbours are the closest, most-"
               "correlated\nones (the paper's open cooperator-selection"
               " problem).\n";
  return 0;
}
