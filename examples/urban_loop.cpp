/// \file urban_loop.cpp
/// The full paper experiment as a configurable application: Table 1, the
/// per-flow reception figures, protocol activity counters, and optional
/// CSV export for external plotting.
///
///   $ ./urban_loop --rounds=30 --seed=2008 --cars=3
///       [--speed-kmh=20] [--no-coop] [--batched] [--csv=outdir]
///       [--round-threads=1] (parallelise the rounds; same bytes)
///       [--figures] (print Figures 3-8 as well)

#include <iostream>

#include "analysis/csv.h"
#include "analysis/experiment.h"
#include "analysis/figures.h"
#include "analysis/table1.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  flags.allowOnly({"rounds", "seed", "cars", "speed-kmh", "gap",
                   "round-threads", "no-coop", "batched", "figures", "csv",
                   "log-level"});

  analysis::UrbanExperimentConfig config;
  config.rounds = flags.getInt("rounds", 30);
  config.seed = static_cast<std::uint64_t>(flags.getInt("seed", 2008));
  config.scenario.carCount = flags.getInt("cars", 3);
  config.scenario.baseSpeedMps = flags.getDouble("speed-kmh", 20.0) / 3.6;
  config.scenario.gapSeconds = flags.getDouble("gap", 4.0);
  config.roundThreads = flags.getInt("round-threads", 1);
  config.carq.cooperationEnabled = !flags.getBool("no-coop", false);
  if (flags.getBool("batched", false)) {
    config.carq.requestMode = carq::RequestMode::kBatched;
  }

  std::cout << "urban loop: " << config.scenario.carCount << " cars, "
            << config.rounds << " rounds, "
            << config.scenario.baseSpeedMps * 3.6 << " km/h, cooperation "
            << (config.carq.cooperationEnabled ? "on" : "off") << "\n\n";

  analysis::UrbanExperiment experiment(config);
  const analysis::UrbanExperimentResult result = experiment.run();

  std::cout << analysis::renderTable1(result.table1) << "\n";
  std::cout << analysis::renderLossSummary(result.table1) << "\n";

  std::cout << "protocol activity per car-round (mean): "
            << result.totals.hellosPerRound.mean() << " HELLOs, "
            << result.totals.requestsPerRound.mean() << " REQUESTs, "
            << result.totals.coopDataPerRound.mean() << " CoopData ("
            << result.totals.suppressedPerRound.mean()
            << " suppressed), " << result.totals.bufferedPerRound.mean()
            << " packets buffered for others\n";
  const auto& medium = result.totals.medium;
  std::cout << "medium: " << medium.framesTransmitted << " frames tx, "
            << medium.framesDelivered << " delivered, "
            << medium.framesChannelError << " channel errors, "
            << medium.framesBelowSensitivity << " below sensitivity, "
            << medium.framesCollided << " collisions, "
            << medium.framesHalfDuplexMissed << " half-duplex misses\n";

  if (flags.getBool("figures", false)) {
    for (const auto& [flow, figure] : result.figures) {
      std::cout << "\n" << analysis::renderReceptionFigure(figure);
      std::cout << "\n" << analysis::renderCoopFigure(figure);
    }
  }

  const std::string dir = flags.getString("csv", "");
  if (!dir.empty()) {
    analysis::writeTable1Csv(dir + "/urban_table1.csv", result.table1);
    for (const auto& [flow, figure] : result.figures) {
      std::vector<std::string> headers;
      std::vector<std::vector<double>> columns;
      for (const auto& [car, acc] : figure.rxByCar) {
        headers.push_back("rx_car_" + std::to_string(car));
        columns.push_back(acc.means());
      }
      headers.push_back("after_coop");
      columns.push_back(figure.afterCoop.means());
      headers.push_back("joint");
      columns.push_back(figure.joint.means());
      analysis::writeSeriesCsv(
          dir + "/urban_flow" + std::to_string(flow) + ".csv", "packet",
          headers, columns);
    }
    std::cout << "\nCSV written to " << dir << "/\n";
  }
  return 0;
}
