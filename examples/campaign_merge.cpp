/// \file campaign_merge.cpp
/// Folds campaign shard partials back into the full campaign result.
/// Each shard process runs `--shard=i/N --partial-out=shard_i.part`;
/// this tool validates the set (same campaign, every shard present,
/// full grid coverage) and re-emits the merged artefacts -- byte-for-byte
/// identical to what the single-process run would have written.
///
///   $ ./example_campaign_merge shard_0.part shard_1.part
///       [--csv=FILE] [--json=FILE] [--figures-dir=DIR --figures-base=B]
///
/// Shard files may be binary v3 or JSON v1/v2 (mixed freely; the format
/// is auto-detected per file). Binary shards stream point-by-point
/// through a bounded record buffer -- the fast path for many-point
/// campaigns -- while JSON falls back to the DOM reader.
///
/// With no output flags the tool just validates and prints the merged
/// point count (useful as a shard-set integrity check).

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "obs/manifest.h"
#include "runner/campaign.h"
#include "runner/emit.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  flags.allowOnly(
      {"csv", "json", "figures-dir", "figures-base", "log-level"});
  if (flags.positional().empty()) {
    std::cerr << "usage: campaign_merge SHARD... [--csv=FILE]"
                 " [--json=FILE] [--figures-dir=DIR --figures-base=B]\n";
    return 2;
  }

  runner::CampaignResult merged;
  try {
    merged = runner::resultFromPartialFiles(flags.positional());
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }

  std::cout << "merged " << flags.positional().size() << " shard(s): "
            << merged.scenario << " seed=" << merged.masterSeed << ", "
            << merged.points.size() << " grid points, " << merged.totalJobs
            << " jobs\n";

  bool ok = true;
  const std::string csvPath = flags.getString("csv", "");
  if (!csvPath.empty()) {
    if (runner::writeCampaignCsv(csvPath, merged)) {
      std::cout << "wrote " << csvPath << "\n";
    } else {
      ok = false;
    }
  }
  const std::string jsonPath = flags.getString("json", "");
  if (!jsonPath.empty()) {
    if (runner::writeCampaignJson(jsonPath, merged)) {
      std::cout << "wrote " << jsonPath << "\n";
    } else {
      ok = false;
    }
  }
  const std::string figuresDir = flags.getString("figures-dir", "");
  if (!figuresDir.empty()) {
    const std::string base = flags.getString("figures-base", "campaign");
    std::size_t expected = 0;
    for (const runner::GridPointSummary& point : merged.points) {
      expected += point.figures.size();
    }
    const std::size_t written =
        runner::writeCampaignFigureCsvs(figuresDir, base, merged);
    // writeCampaignFigureCsvs stops on the first I/O failure; a short
    // count means missing artefacts, which must fail the exit code.
    if (written != expected) ok = false;
    std::cout << "wrote " << written << " of " << expected
              << " figure CSV(s) under " << figuresDir << "/" << base
              << "*\n";
  }
  return ok ? 0 : 1;
}
