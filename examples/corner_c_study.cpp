/// \file corner_c_study.cpp
/// Probes the paper's explanation for its Table-1 anomaly: at corner C
/// car 3 closed on car 2, so "their reception conditions on the street
/// ... [became] quite similar" near the end of the coverage area. We
/// quantify that with the phi coefficient (Pearson correlation of binary
/// reception indicators) between car 2's and car 3's reception of car 2's
/// packets, separately for the head and the tail of the window, with the
/// corner-C convergence on and off.
///
///   $ ./corner_c_study [--rounds=20] [--seed=3]

#include <cmath>
#include <iomanip>
#include <iostream>

#include "analysis/experiment.h"
#include "util/flags.h"

namespace {

using namespace vanet;

struct PhiAccumulator {
  // 2x2 contingency counts of (car2 received, car3 received).
  double n11 = 0, n10 = 0, n01 = 0, n00 = 0;

  void add(bool a, bool b) {
    if (a && b) ++n11;
    else if (a && !b) ++n10;
    else if (!a && b) ++n01;
    else ++n00;
  }

  double phi() const {
    const double a = n11, b = n10, c = n01, d = n00;
    const double denom =
        std::sqrt((a + b) * (c + d) * (a + c) * (b + d));
    return denom > 0.0 ? (a * d - b * c) / denom : 0.0;
  }
};

struct StudyResult {
  double phiHead = 0.0;
  double phiTail = 0.0;
};

StudyResult run(double closeGapSeconds, int rounds, std::uint64_t seed) {
  analysis::UrbanExperimentConfig config;
  config.rounds = rounds;
  config.seed = seed;
  config.scenario.cornerCCloseGapSeconds = closeGapSeconds;
  analysis::UrbanExperiment experiment(config);

  PhiAccumulator head;
  PhiAccumulator tail;
  for (int round = 0; round < rounds; ++round) {
    const trace::RoundTrace trace = experiment.runRound(round).trace;
    const auto window = trace.associationWindow(2);
    if (!window.has_value()) continue;
    const auto seqs =
        trace.seqsTransmittedDuring(2, window->first, window->second);
    const std::size_t n = seqs.size();
    for (std::size_t i = 0; i < n; ++i) {
      const bool rx2 = trace.wasOverheard(2, 2, seqs[i]);
      const bool rx3 = trace.wasOverheard(3, 2, seqs[i]);
      if (i < n / 3) {
        head.add(rx2, rx3);
      } else if (i >= (2 * n) / 3) {
        tail.add(rx2, rx3);
      }
    }
  }
  return {head.phi(), tail.phi()};
}

}  // namespace

int main(int argc, char** argv) {
  const vanet::Flags flags(argc, argv);
  flags.allowOnly({"rounds", "seed", "log-level"});
  const int rounds = flags.getInt("rounds", 20);
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 3));

  std::cout << "Correlation (phi) between car 2's and car 3's reception of"
               " car 2's packets,\nhead vs tail of the coverage window ("
            << rounds << " rounds):\n\n";
  std::cout << std::left << std::setw(26) << "corner-C convergence"
            << std::right << std::setw(12) << "head phi" << std::setw(12)
            << "tail phi" << "\n";
  std::cout << std::fixed << std::setprecision(3);

  const StudyResult with = run(0.9, rounds, seed);
  const StudyResult without = run(4.0, rounds, seed);  // gap never closes
  std::cout << std::left << std::setw(26) << "on (paper's corner C)"
            << std::right << std::setw(12) << with.phiHead << std::setw(12)
            << with.phiTail << "\n";
  std::cout << std::left << std::setw(26) << "off (constant gaps)"
            << std::right << std::setw(12) << without.phiHead << std::setw(12)
            << without.phiTail << "\n";

  std::cout << "\nWith the convergence on, cars 2 and 3 are a few metres"
               " apart by the end of\nthe covered street: their shadowing"
               " (and thus their losses) correlate in the\ntail, exactly the"
               " behaviour the paper uses to explain its Table-1 anomaly.\n";
  return 0;
}
