/// \file highway_infostations.cpp
/// Delay-tolerant file download on a highway dotted with Infostations
/// (the paper's deployment model, §1/§2): each car in the platoon must
/// collect an F-packet file that every AP cycles continuously. Between
/// APs the platoon repairs its gaps with Cooperative ARQ. The app prints
/// per-car progress and the with/without-cooperation comparison the
/// paper's §6 asks about (AP visits needed to finish a download).
///
///   $ ./highway_infostations [--file=220] [--aps=8] [--spacing=700]
///       [--speed-kmh=50] [--cars=3] [--rounds=5] [--seed=7]

#include <iomanip>
#include <iostream>

#include "analysis/experiment.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  flags.allowOnly({"file", "rounds", "aps", "spacing", "cars", "speed-kmh",
                   "seed", "round-threads", "log-level"});

  const SeqNo fileSize = static_cast<SeqNo>(flags.getInt("file", 220));
  const int rounds = flags.getInt("rounds", 5);

  std::cout << "Infostation highway: " << flags.getInt("aps", 8)
            << " APs every " << flags.getDouble("spacing", 700.0)
            << " m, file of " << fileSize << " packets per car, "
            << flags.getInt("cars", 3) << "-car platoon at "
            << flags.getDouble("speed-kmh", 50.0) << " km/h\n\n";

  for (const bool coop : {true, false}) {
    analysis::HighwayExperimentConfig config;
    config.rounds = rounds;
    config.seed = static_cast<std::uint64_t>(flags.getInt("seed", 7));
    config.scenario.carCount = flags.getInt("cars", 3);
    config.scenario.apCount = flags.getInt("aps", 8);
    config.scenario.apSpacing = flags.getDouble("spacing", 700.0);
    config.scenario.roadLengthMetres =
        config.scenario.firstApArc +
        config.scenario.apSpacing * (config.scenario.apCount - 1) + 500.0;
    config.scenario.speedMps = flags.getDouble("speed-kmh", 50.0) / 3.6;
    config.roundThreads = flags.getInt("round-threads", 1);
    config.carq.fileSizeSeqs = fileSize;
    config.carq.cooperationEnabled = coop;

    analysis::HighwayExperiment experiment(config);
    const analysis::HighwayExperimentResult result = experiment.run();

    std::cout << "--- cooperation " << (coop ? "ON" : "OFF") << " ---\n";
    std::cout << std::left << std::setw(8) << "car" << std::right
              << std::setw(14) << "completed" << std::setw(14) << "AP visits"
              << std::setw(16) << "time (s)" << "\n";
    for (const auto& [car, carResult] : result.cars) {
      std::cout << std::left << std::setw(8) << car << std::right
                << std::fixed << std::setprecision(1) << std::setw(10)
                << carResult.completedRounds << "/" << std::left
                << std::setw(3) << rounds << std::right << std::setw(14)
                << (carResult.completedRounds > 0
                        ? carResult.apVisitsToComplete.mean()
                        : 0.0)
                << std::setw(16)
                << (carResult.completedRounds > 0
                        ? carResult.timeToCompleteSeconds.mean()
                        : 0.0)
                << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "Cooperation lets the platoon leave each AP with the union of"
               " everyone's\nreceptions, so downloads finish visits earlier"
               " than radio luck alone allows.\n";
  return 0;
}
